"""HTTP/JSON front door for a shared study session: ``repro serve``.

A :class:`StudyServer` wraps one :class:`~repro.api.session.Session`
bound to a cache directory in a stdlib
:class:`~http.server.ThreadingHTTPServer`.  Clients submit study and
suite specs as JSON, poll job status, stream per-member progress over
server-sent events, and read cached results back out of the shared
store — all without importing repro.  Suites go through the durable
:class:`~repro.sched.queue.TaskQueue`, so external
``python -m repro worker <cache_dir>`` processes (local or on other
hosts over a shared filesystem) drain the same submissions.

Routes (all JSON unless noted):

========  ==============================  =====================================
method    path                            purpose
========  ==============================  =====================================
GET       ``/``                           status dashboard (HTML)
GET       ``/v1/health``                  liveness + cache stats
GET       ``/v1/studies``                 registry catalogue
POST      ``/v1/studies``                 submit a StudySpec -> 202 ``{"job"}``
POST      ``/v1/suites``                  submit a SuiteSpec -> 202 ``{"job"}``
GET       ``/v1/jobs``                    all job summaries
GET       ``/v1/jobs/<id>``               one job summary
DELETE    ``/v1/jobs/<id>``               cancel (best effort)
GET       ``/v1/jobs/<id>/result``        full result payload once done
GET       ``/v1/jobs/<id>/events``        progress stream (text/event-stream)
GET       ``/v1/queue``                   snapshot of every live task queue
GET       ``/v1/results/<suite>``         completed members of a suite
GET       ``/v1/results/<suite>/<name>``  one member's completion record
GET       ``/v1/reports/<suite>``         variance-provenance report (JSON)
GET       ``/v1/telemetry/spans``         recent trace spans (``?limit=N``)
GET       ``/metrics``                    Prometheus text exposition
========  ==============================  =====================================

Malformed specs are rejected with 400 and the registry's positional
error message (e.g. ``suite spec 'noise': study 'nois' ...``); unknown
paths and job ids are 404.  The server binds before :meth:`serve_forever`
returns control, so tests construct it with ``port=0`` and read the
kernel-assigned port from ``server_address``.
"""

from __future__ import annotations

import json
import os
import socket
import time
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro.api.registry import iter_studies
from repro.api.session import Session
from repro.sched.queue import TaskQueue
from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.jobs import JOB_STATES, JobRegistry
from repro.telemetry.instruments import (
    HTTP_REQUESTS,
    HTTP_REQUEST_SECONDS,
    SERVE_JOBS,
    SSE_STREAMS,
)
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.tracing import trace

__all__ = ["StudyServer", "serve"]

#: Seconds an idle ``/events`` stream waits before emitting an SSE
#: keepalive comment (which also detects disconnected clients).
SSE_KEEPALIVE_SECONDS = 15.0

#: Refuse request bodies beyond this size — suite manifests are a few KiB;
#: anything megabytes-large is a mistake or abuse, not a spec.
MAX_BODY_BYTES = 8 << 20


class _Handler(BaseHTTPRequestHandler):
    """One request; routing is a straight match on the split path."""

    protocol_version = "HTTP/1.1"
    server: "StudyServer"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, payload: Any, status: int = HTTPStatus.OK
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status)

    def _read_body_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body is empty; expected a JSON spec")
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}")

    def _parts(self) -> List[str]:
        path = self.path.split("?", 1)[0]
        return [part for part in path.split("/") if part]

    def _query(self) -> Dict[str, List[str]]:
        split = self.path.split("?", 1)
        return parse_qs(split[1]) if len(split) == 2 else {}

    def send_response(self, code: int, message: Optional[str] = None) -> None:
        # Remember the status so the instrumentation wrapper can label
        # ``repro_http_requests_total`` without threading it through
        # every handler's return path.
        self._telemetry_status = int(code)
        super().send_response(code, message)

    def _route_template(self, parts: List[str]) -> str:
        """Collapse a concrete path to a low-cardinality metric label."""
        if not parts:
            return "/"
        if parts == ["metrics"]:
            return "/metrics"
        if parts[0] != "v1":
            return "other"
        route = parts[1:]
        if not route:
            return "other"
        head = route[0]
        if head == "jobs":
            if len(route) == 1:
                return "/v1/jobs"
            if len(route) == 2:
                return "/v1/jobs/{id}"
            return "/v1/jobs/{id}/" + route[2]
        if head == "results":
            if len(route) == 3:
                return "/v1/results/{suite}/{member}"
            return "/v1/results/{suite}"
        if head == "reports":
            return "/v1/reports/{suite}"
        if head in ("health", "studies", "suites", "queue"):
            return "/v1/" + head
        if head == "telemetry" and len(route) == 2:
            return "/v1/telemetry/" + route[1]
        return "other"

    def _instrumented(self, method: str, inner) -> None:
        parts = self._parts()
        route = self._route_template(parts)
        self._telemetry_status = 0
        started = time.perf_counter()
        try:
            inner(parts)
        finally:
            HTTP_REQUEST_SECONDS.labels(route=route).observe(
                time.perf_counter() - started
            )
            HTTP_REQUESTS.labels(
                method=method,
                route=route,
                status=str(self._telemetry_status or 0),
            ).inc()

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        self._instrumented("GET", self._do_get)

    def do_POST(self) -> None:  # noqa: N802
        self._instrumented("POST", self._do_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._instrumented("DELETE", self._do_delete)

    def _do_get(self, parts: List[str]) -> None:
        try:
            if not parts:
                return self._dashboard()
            if parts == ["metrics"]:
                return self._metrics()
            if parts[0] != "v1":
                return self._send_error_json(HTTPStatus.NOT_FOUND, "not found")
            route = parts[1:]
            if route == ["health"]:
                return self._health()
            if route == ["studies"]:
                return self._send_json(
                    [info.to_dict() for info in iter_studies()]
                )
            if route == ["jobs"]:
                return self._send_json(
                    [job.to_dict() for job in self.server.registry.jobs()]
                )
            if len(route) == 2 and route[0] == "jobs":
                return self._job_summary(route[1])
            if len(route) == 3 and route[0] == "jobs" and route[2] == "result":
                return self._job_result(route[1])
            if len(route) == 3 and route[0] == "jobs" and route[2] == "events":
                return self._job_events(route[1])
            if route == ["queue"]:
                return self._queue()
            if len(route) == 2 and route[0] == "results":
                return self._suite_members(route[1])
            if len(route) == 3 and route[0] == "results":
                return self._member_record(route[1], route[2])
            if len(route) == 2 and route[0] == "reports":
                return self._suite_report(route[1])
            if route == ["telemetry", "spans"]:
                return self._telemetry_spans()
            return self._send_error_json(HTTPStatus.NOT_FOUND, "not found")
        except BrokenPipeError:
            pass  # client went away mid-response

    def _do_post(self, parts: List[str]) -> None:
        if parts == ["v1", "studies"]:
            return self._submit(self.server.registry.submit_study)
        if parts == ["v1", "suites"]:
            return self._submit(self.server.registry.submit_suite)
        self._send_error_json(HTTPStatus.NOT_FOUND, "not found")

    def _do_delete(self, parts: List[str]) -> None:
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self.server.registry.get(parts[2])
            if job is None:
                return self._send_error_json(
                    HTTPStatus.NOT_FOUND, f"unknown job {parts[2]!r}"
                )
            cancelled = job.cancel()
            return self._send_json(
                {"job": job.id, "cancelled": cancelled, **job.to_dict()}
            )
        self._send_error_json(HTTPStatus.NOT_FOUND, "not found")

    # -- handlers -------------------------------------------------------
    def _dashboard(self) -> None:
        body = DASHBOARD_HTML.encode("utf-8")
        self.send_response(HTTPStatus.OK)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _metrics(self) -> None:
        # Job-state gauges are sampled at scrape time rather than
        # maintained incrementally, so every state (including ones with
        # zero jobs right now) is published each scrape.
        states = {state: 0 for state in JOB_STATES}
        for job in self.server.registry.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        for state, count in sorted(states.items()):
            SERVE_JOBS.labels(state=state).set(count)
        body = REGISTRY.render().encode("utf-8")
        self.send_response(HTTPStatus.OK)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _telemetry_spans(self) -> None:
        query = self._query()
        try:
            limit = int(query.get("limit", ["500"])[0])
        except ValueError:
            return self._send_error_json(
                HTTPStatus.BAD_REQUEST, "limit must be an integer"
            )
        spans = trace.spans(limit=max(limit, 0))
        self._send_json({"count": len(spans), "spans": spans})

    def _health(self) -> None:
        registry = self.server.registry
        self._send_json(
            {
                "status": "ok",
                "cache_dir": registry.cache_dir,
                "jobs": len(registry.jobs()),
                "cache": registry.session.cache.stats(),
            }
        )

    def _submit(self, submit) -> None:
        try:
            payload = self._read_body_json()
            job = submit(payload)
        except (KeyError, TypeError, ValueError) as error:
            # Positional spec errors ("suite spec 'x': ...") surface
            # verbatim so a client can fix the offending entry.
            message = error.args[0] if error.args else str(error)
            return self._send_error_json(HTTPStatus.BAD_REQUEST, str(message))
        except RuntimeError as error:
            return self._send_error_json(
                HTTPStatus.SERVICE_UNAVAILABLE, str(error)
            )
        self._send_json(
            {"job": job.id, **job.to_dict()}, HTTPStatus.ACCEPTED
        )

    def _job_summary(self, job_id: str) -> None:
        job = self.server.registry.get(job_id)
        if job is None:
            return self._send_error_json(
                HTTPStatus.NOT_FOUND, f"unknown job {job_id!r}"
            )
        self._send_json(job.to_dict())

    def _job_result(self, job_id: str) -> None:
        job = self.server.registry.get(job_id)
        if job is None:
            return self._send_error_json(
                HTTPStatus.NOT_FOUND, f"unknown job {job_id!r}"
            )
        summary = job.to_dict()
        if job.state != "done" or job.result is None:
            status = (
                HTTPStatus.OK if job.terminal else HTTPStatus.ACCEPTED
            )
            return self._send_json(summary, status)
        # to_json is the same serialisation the CLI and completion records
        # use, so byte-for-byte comparisons against direct runs hold.
        summary["result"] = json.loads(job.result.to_json())
        self._send_json(summary)

    def _job_events(self, job_id: str) -> None:
        job = self.server.registry.get(job_id)
        if job is None:
            return self._send_error_json(
                HTTPStatus.NOT_FOUND, f"unknown job {job_id!r}"
            )
        self.send_response(HTTPStatus.OK)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        # Resume from Last-Event-ID so a dropped dashboard reconnects
        # without replaying (EventSource sends it automatically).
        try:
            next_seq = int(self.headers.get("Last-Event-ID", -1)) + 1
        except ValueError:
            next_seq = 0
        SSE_STREAMS.inc()
        try:
            while True:
                events, terminal = job.wait_events(
                    next_seq, timeout=SSE_KEEPALIVE_SECONDS
                )
                for event in events:
                    frame = (
                        f"id: {event['seq']}\n"
                        f"event: {event['event']}\n"
                        f"data: {json.dumps(event, sort_keys=True)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                    next_seq = event["seq"] + 1
                if terminal and not events:
                    return  # log drained and job settled: end the stream
                if not events:
                    self.wfile.write(b": keepalive\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client disconnected; nothing to clean up
        finally:
            SSE_STREAMS.dec()

    def _queue(self) -> None:
        statuses = []
        for queue in TaskQueue.discover(self.server.registry.cache_dir):
            try:
                statuses.append(queue.status())
            except OSError:
                continue  # queue destroyed between discover and status
        self._send_json(statuses)

    def _suite_records_dir(self, suite: str) -> Optional[str]:
        # Reject path components so a crafted scope cannot escape the
        # store ("../../etc" etc.).
        if not suite or "/" in suite or "\\" in suite or suite in (".", ".."):
            return None
        session = self.server.registry.session
        return os.path.join(session.cache.namespace("suites"), suite)

    def _suite_members(self, suite: str) -> None:
        records_dir = self._suite_records_dir(suite)
        if records_dir is None or not os.path.isdir(records_dir):
            return self._send_error_json(
                HTTPStatus.NOT_FOUND, f"no cached results for suite {suite!r}"
            )
        members = sorted(
            entry[: -len(".json")]
            for entry in os.listdir(records_dir)
            if entry.endswith(".json") and entry != "manifest.json"
        )
        self._send_json(
            {
                "suite": suite,
                "members": members,
                "manifest": os.path.isfile(
                    os.path.join(records_dir, "manifest.json")
                ),
            }
        )

    def _suite_report(self, suite: str) -> None:
        from repro.report import ReportError, build_suite_report

        records_dir = self._suite_records_dir(suite)
        if records_dir is None or not os.path.isdir(records_dir):
            return self._send_error_json(
                HTTPStatus.NOT_FOUND, f"no cached results for suite {suite!r}"
            )
        cache_dir = self.server.registry.session.cache.cache_dir
        try:
            # Built from the completion records alone — the service never
            # re-executes a measurement to serve a report.
            payload = build_suite_report(cache_dir, suite)
        except ReportError as error:
            return self._send_error_json(HTTPStatus.CONFLICT, str(error))
        self._send_json(payload)

    def _member_record(self, suite: str, member: str) -> None:
        records_dir = self._suite_records_dir(suite)
        if (
            records_dir is None
            or not member
            or "/" in member
            or "\\" in member
            or member in (".", "..")
        ):
            return self._send_error_json(
                HTTPStatus.NOT_FOUND, f"no cached results for suite {suite!r}"
            )
        if member == "manifest":
            path = os.path.join(records_dir, "manifest.json")
        else:
            path = os.path.join(records_dir, f"{member}.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return self._send_error_json(
                HTTPStatus.NOT_FOUND,
                f"no cached result for member {member!r} of suite {suite!r}",
            )
        self._send_json(record)


class StudyServer(ThreadingHTTPServer):
    """The service: a threading HTTP server owning one job registry.

    The socket is bound and listening once the constructor returns
    (``server_address`` then carries the real port, even for ``port=0``),
    but no request is handled until :meth:`serve_forever` runs — tests
    drive that from a background thread.  :meth:`shutdown` stops the
    accept loop; :meth:`server_close` also closes the registry (cancelling
    live jobs and ending every event stream) and, when the server owns
    its session, the session too.
    """

    daemon_threads = True  # in-flight handlers must not block exit

    def __init__(
        self,
        session: Session,
        *,
        host: str = "127.0.0.1",
        port: int = 8321,
        owns_session: bool = False,
        verbose: bool = False,
        **registry_config: Any,
    ) -> None:
        self.registry = JobRegistry(session, **registry_config)
        self.owns_session = bool(owns_session)
        self.verbose = bool(verbose)
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        if ":" in host:  # bare IPv6 literal needs brackets in a URL
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        try:
            self.registry.close()
            if self.owns_session:
                self.registry.session.close()
        finally:
            super().server_close()


def serve(
    cache_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    session_config: Optional[Dict[str, Any]] = None,
    verbose: bool = True,
    **registry_config: Any,
) -> None:
    """Run the study service until interrupted (the CLI entry point).

    Opens a session on ``cache_dir`` (``session_config`` forwards knobs
    like ``n_jobs`` / ``max_concurrent_studies`` / store budgets), binds
    ``host:port``, and blocks in the accept loop.  ``KeyboardInterrupt``
    shuts down gracefully: live jobs are cancelled, durable suite queues
    survive for workers or a resubmission to finish.
    """
    session = Session(cache_dir=cache_dir, **(session_config or {}))
    try:
        server = StudyServer(
            session,
            host=host,
            port=port,
            owns_session=True,
            verbose=verbose,
            **registry_config,
        )
    except (OSError, socket.error):
        session.close()
        raise
    with server:  # server_close on the way out, whatever happens
        print(f"repro serve: cache_dir={cache_dir} listening on {server.url}")
        print("dashboard at /  API under /v1/  (Ctrl-C to stop)")
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            print("\nrepro serve: shutting down")
