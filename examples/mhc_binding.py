"""Peptide-MHC binding case study: single MLP vs ensemble (Tables 8/9 analogue).

The paper's fifth case study predicts peptide-MHC binding affinities with a
shallow MLP and compares against an MHCflurry-style ensemble.  This example
builds the synthetic analogue dataset, trains both models, prints the
AUC / Pearson-correlation table, and then — as the paper recommends —
replaces the bare table with a variance-aware conclusion from the
probability-of-outperforming test over paired runs.

Run with:  python examples/mhc_binding.py
"""

from __future__ import annotations

from repro import Session, StudySpec


def main() -> None:
    print("Training the single-MLP and ensemble models on the peptide-binding analogue...\n")
    with Session(n_jobs=2) as session:
        result = session.run(
            StudySpec(
                study="mhc_comparison",
                params={
                    "n_samples": 900,
                    "n_ensemble_members": 5,
                    "k_pairs": 15,
                },
                random_state=0,
            )
        )
    print(result.summary())
    comparison = result.comparison
    print(
        "\nRather than reading the table alone, the recommended test accounts for\n"
        "the variance of both pipelines across data splits and seeds:"
    )
    print(
        f"  P(ensemble > single MLP) = {comparison.p_a_gt_b:.2f} "
        f"(95% CI [{comparison.ci_low:.2f}, {comparison.ci_high:.2f}])"
    )
    print(f"  conclusion: {comparison.conclusion.value}")


if __name__ == "__main__":
    main()
