"""Error rates of comparison criteria (Figure 6 workflow).

Simulates benchmark outcomes with the variances measured on the case
studies and sweeps the true probability that algorithm A outperforms B.
For each decision criterion — single-point comparison, average comparison
with a published-improvement threshold, and the recommended probability of
outperforming — the detection rate is reported in the three regions of the
sweep: H0 true (any detection is a false positive), the grey zone, and H1
true (a missed detection is a false negative).

Run with:  python examples/detection_rates.py
"""

from __future__ import annotations

from repro import Session, StudySpec
from repro.utils.tables import format_table


def main() -> None:
    print("Simulating benchmark comparisons (a few thousand simulated benchmarks)...\n")
    with Session(n_jobs=2) as session:
        result = session.run(
            StudySpec(
                study="detection",
                params={
                    "probabilities": [0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 0.99],
                    "k": 50,
                    "n_simulations": 100,
                },
                random_state=0,
            )
        )
    print(result.summary())

    rows = []
    for method in ("single_point", "average", "probability_of_outperforming"):
        for estimator in ("ideal", "biased"):
            rows.append(
                {
                    "method": method,
                    "estimator": estimator,
                    "false_positive_rate": result.false_positive_rate(method, estimator),
                    "false_negative_rate": result.false_negative_rate(method, estimator),
                }
            )
    print()
    print(format_table(rows, title="Error rates per criterion (Figure 6 summary)"))
    print(
        "\nTakeaway: the average comparison is over-conservative, the single-point\n"
        "comparison is unreliable in both directions, and the probability-of-\n"
        "outperforming test balances false positives and false negatives — even\n"
        "when fed by the cheap biased estimator."
    )


if __name__ == "__main__":
    main()
