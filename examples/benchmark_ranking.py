"""Rank several algorithms on one task, reporting statistical ties.

The paper recommends highlighting not only the best-performing algorithm
but every algorithm within the significance bounds.  This example runs four
pipelines of different capacity on the entailment analogue task with paired
seeds, then ranks them with the probability-of-outperforming criterion
(γ corrected for the number of pairwise comparisons) and prints which
contestants are statistical ties of the leader.

Run with:  python examples/benchmark_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import BenchmarkProcess, get_task, rank_algorithms
from repro.core.pairing import paired_seed_bundles


def main() -> None:
    task = get_task("entailment")
    dataset = task.make_dataset(random_state=7, n_samples=600)
    contestants = {
        "mlp-48": task.make_pipeline(hidden_sizes=(48,), n_epochs=10),
        "mlp-32": task.make_pipeline(hidden_sizes=(32,), n_epochs=10),
        "mlp-24": task.make_pipeline(hidden_sizes=(24,), n_epochs=10),
        "mlp-2": task.make_pipeline(hidden_sizes=(2,), n_epochs=10),
    }
    processes = {
        name: BenchmarkProcess(dataset, pipeline, hpo_budget=5)
        for name, pipeline in contestants.items()
    }

    print("Running 15 paired measurements per contestant (shared splits and seeds)...\n")
    bundles = paired_seed_bundles(15, randomize="all", random_state=0)
    scores = {
        name: np.array([process.measure(seeds).test_score for seeds in bundles])
        for name, process in processes.items()
    }

    ranking = rank_algorithms(scores, gamma=0.75, random_state=0)
    print(ranking.report())
    print()
    print(f"leader: {ranking.leader.name}")
    print(f"statistical ties to highlight together: {', '.join(ranking.top_group)}")
    others = [e.name for e in ranking.entries if not e.within_significance_bounds]
    if others:
        print(f"meaningfully outperformed: {', '.join(others)}")


if __name__ == "__main__":
    main()
