"""Quickstart: variance-aware comparison of two learning pipelines.

The recommended workflow of the paper in ~40 lines:

1. pick a task and build two benchmark processes (algorithm A and B on the
   same finite dataset);
2. decide how many paired runs you need with Noether's formula;
3. run the paired measurements with every learning-procedure source of
   variance randomized (the affordable ``FixHOptEst``-style protocol);
4. conclude with the probability-of-outperforming test: the result must be
   both statistically significant (CI_min > 0.5) and meaningful
   (CI_max > gamma = 0.75).

Heavy studies go through the measurement engine (:mod:`repro.engine`):
pass ``n_jobs`` to any study driver to fan the independent measurements
out over workers, and attach a ``MeasurementCache`` to replay repeated
(seeds, hyperparameters) configurations without refitting.  Seeds are
pre-drawn before execution, so results are bitwise identical for any
``n_jobs`` at a fixed ``random_state``::

    from repro import MeasurementCache, StudyRunner
    from repro.core.variance import variance_decomposition_study

    cache = MeasurementCache("measurements.pkl")     # optional persistence
    runner = StudyRunner(process_a, n_jobs=4, cache=cache)
    decomposition = variance_decomposition_study(
        process_a, n_seeds=50, runner=runner, random_state=0
    )
    print(cache.stats())                             # hits / misses / entries

Full paper experiments go through the unified Study API (:mod:`repro.api`):
describe a registered study with a declarative, JSON-round-trippable
``StudySpec`` and execute it through a ``Session``, which shares one
measurement cache and executor across every study it runs (see
``EXPERIMENTS.md`` for the catalogue of registered studies).  Seeds are
derived from scope paths (task / repetition), so a sharded, streaming
``session.submit(spec)`` is bitwise-identical to ``session.run(spec)``,
and ``Session(cache_dir=...)`` persists measurements one file per content
hash so concurrent workers share a store without locks.  The same specs
run from the shell::

    python -m repro run spec.json --n-jobs 4 --cache-dir .repro-cache

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BenchmarkProcess,
    Session,
    StudySpec,
    compare_pipelines,
    get_task,
    list_studies,
    minimum_sample_size,
)


def study_api_demo() -> None:
    """The declarative route: one Session, many studies, one shared cache."""
    print(f"registered studies: {', '.join(list_studies())}\n")
    spec = StudySpec(
        study="variance",
        params={
            "task_names": ["entailment"],
            "n_seeds": 10,
            "include_hpo": False,
            "dataset_size": 400,
        },
        n_jobs=2,
        random_state=0,
    )
    with Session() as session:
        result = session.run(spec)
        print(result.summary())
        # Re-running the same spec replays every measurement from the
        # session's shared cache — zero refits.
        replay = session.run(spec)
        print(
            f"\nreplay cache hits/misses: {replay.cache_stats['hits']}"
            f"/{replay.cache_stats['misses']} "
            f"(warm replay {replay.elapsed_seconds:.3f}s vs cold run "
            f"{result.elapsed_seconds:.3f}s)"
        )
        # Sharded streaming execution derives the same scope-addressed
        # seeds, so the merged result is bitwise-identical to run() —
        # and, in this session, replays straight from the shared cache.
        two_tasks = spec.with_params(task_names=["entailment", "sentiment"])
        handle = session.submit(two_tasks)
        merged = handle.result()
        full = session.run(two_tasks)
        assert merged.to_rows() == full.to_rows()
        print(f"\nsubmit == run over shards {handle.keys}")
    # Specs round-trip through JSON, so studies are launchable from config
    # files, queues, or `python -m repro run spec.json`.
    assert StudySpec.from_json(spec.to_json()) == spec


def main() -> None:
    task = get_task("entailment")
    dataset = task.make_dataset(random_state=42, n_samples=600)

    # Algorithm A: a 32-unit MLP.  Algorithm B: a much smaller model.
    process_a = BenchmarkProcess(
        dataset, task.make_pipeline(hidden_sizes=(32,), n_epochs=10), hpo_budget=10
    )
    process_b = BenchmarkProcess(
        dataset, task.make_pipeline(hidden_sizes=(2,), n_epochs=10), hpo_budget=10
    )

    k = minimum_sample_size(gamma=0.75, alpha=0.05, beta=0.05)
    print(f"Noether minimum sample size for gamma=0.75: {k} paired runs")

    report, scores = compare_pipelines(process_a, process_b, k=k, random_state=0)

    print(f"mean score A: {scores.scores_a.mean():.3f}   mean score B: {scores.scores_b.mean():.3f}")
    print(
        f"P(A > B) = {report.p_a_gt_b:.3f} "
        f"[{report.ci_low:.3f}, {report.ci_high:.3f}] (gamma = {report.gamma})"
    )
    print(f"conclusion: {report.conclusion.value}")
    if report.meaningful:
        print("-> algorithm A is a meaningful improvement over B on this task.")
    elif report.significant:
        print("-> A is better than B, but not by a meaningful margin.")
    else:
        print("-> the observed difference could be explained by noise alone.")

    print()
    study_api_demo()


if __name__ == "__main__":
    main()
