"""Ideal vs biased estimators of a pipeline's expected performance.

Reproduces the Section 3.3 comparison: the ideal estimator re-runs
hyperparameter optimization for every measurement (unbiased, O(k·T) fits),
while the biased estimator runs HOpt once and only re-randomizes a subset
of the learning-procedure sources (O(k+T) fits).  The example prints the
standard error of each estimator as the number of measurements k grows, and
the compute cost of each — the paper's "a better biased estimator for 51x
less compute" argument.

Run with:  python examples/estimator_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import BenchmarkProcess, estimator_cost, get_task
from repro.core.variance import EstimatorQualityStudy
from repro.utils.tables import format_table


def main() -> None:
    task = get_task("entailment")
    dataset = task.make_dataset(random_state=1, n_samples=500)
    process = BenchmarkProcess(
        dataset, task.make_pipeline(n_epochs=8), hpo_budget=10
    )

    print("Running the estimator quality study (this trains a few hundred tiny models)...\n")
    study = EstimatorQualityStudy(subsets=("init", "data", "all"), n_repetitions=5, k_max=12)
    results = study.run(process, random_state=0)

    ks = [2, 4, 8, 12]
    rows = []
    for name, result in results.items():
        curve = result.standard_error_curve(ks)
        rows.append({"estimator": name, **{f"k={k}": float(c) for k, c in zip(ks, curve)}})
    print(format_table(rows, title="Standard error of the estimators vs number of measurements (Figure 5)"))

    print()
    cost_rows = [
        {
            "estimator": "IdealEst(k=100)",
            "model_fits": estimator_cost(100, process.hpo_budget, ideal=True),
        },
        {
            "estimator": "FixHOptEst(k=100, All)",
            "model_fits": estimator_cost(100, process.hpo_budget, ideal=False),
        },
    ]
    print(format_table(cost_rows, title="Compute cost (number of model fits)"))

    best_biased = results["FixHOptEst(all)"].standard_error_curve([12])[0]
    init_only = results["FixHOptEst(init)"].standard_error_curve([12])[0]
    print(
        f"\nRandomizing all sources instead of only the weight initialization\n"
        f"shrinks the estimator's standard error from {init_only:.4f} to {best_biased:.4f}\n"
        f"at identical compute cost — ignoring HOpt variance is what hurts."
    )


if __name__ == "__main__":
    main()
