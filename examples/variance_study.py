"""Measure where the variance of a benchmark comes from (Figure 1 workflow).

This example reproduces the paper's variance decomposition on one of the
case-study analogue tasks: every learning-procedure source of variation is
randomized in isolation (data bootstrap, data order, weight init, dropout,
data augmentation), then the three hyperparameter-optimization algorithms
are re-run with only their seed varied.  The output is the per-source
standard deviation of the test metric, as a fraction of the data-bootstrap
standard deviation.

The study is launched through the unified Study API: a declarative
``StudySpec`` executed by a ``Session`` (which shares one measurement
cache and parallel executor across every study it runs).

Run with:  python examples/variance_study.py [task-name]
"""

from __future__ import annotations

import sys

from repro import Session, StudySpec
from repro.utils.tables import format_table


def main() -> None:
    task_name = sys.argv[1] if len(sys.argv) > 1 else "entailment"
    print(f"Running the per-source variance study on {task_name!r} ...\n")
    with Session(n_jobs=2) as session:
        result = session.run(
            StudySpec(
                study="variance",
                params={
                    "task_names": [task_name],
                    "n_seeds": 20,
                    "n_hpo_repetitions": 5,
                    "hpo_budget": 15,
                    "dataset_size": 600,
                },
                random_state=0,
            )
        )
    print(result.summary())

    decomposition = result.decompositions[task_name]
    relative = decomposition.relative_to("data")
    rows = [
        {"source": source, "fraction_of_data_bootstrap_std": value}
        for source, value in sorted(relative.items(), key=lambda kv: -kv[1])
    ]
    for algorithm, std in result.hpo_stds[task_name].items():
        rows.append(
            {
                "source": f"hopt/{algorithm}",
                "fraction_of_data_bootstrap_std": std / decomposition.stds["data"],
            }
        )
    print()
    print(
        format_table(
            rows,
            title="Sources of variation relative to bootstrapping the data (Figure 1)",
        )
    )
    print(
        "\nTakeaway: data sampling dominates; weight initialization and the\n"
        "residual HOpt noise are smaller but of comparable order — all of them\n"
        "should be randomized when estimating a pipeline's performance."
    )


if __name__ == "__main__":
    main()
