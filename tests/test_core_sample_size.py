"""Tests for Noether sample-size determination (Figure C.1)."""

import numpy as np
import pytest

from repro.core.sample_size import minimum_sample_size, sample_size_curve


class TestMinimumSampleSize:
    def test_paper_recommended_threshold_gives_29(self):
        assert minimum_sample_size(0.75, alpha=0.05, beta=0.05) == 29

    def test_smaller_threshold_needs_many_more_samples(self):
        assert minimum_sample_size(0.6) > 150
        assert minimum_sample_size(0.55) > 700

    def test_monotone_decreasing_in_gamma_above_half(self):
        sizes = [minimum_sample_size(g) for g in (0.6, 0.7, 0.8, 0.9)]
        assert sizes == sorted(sizes, reverse=True)

    def test_symmetric_below_half(self):
        assert minimum_sample_size(0.25) == minimum_sample_size(0.75)

    def test_stricter_beta_needs_more_samples(self):
        assert minimum_sample_size(0.75, beta=0.01) > minimum_sample_size(0.75, beta=0.2)

    def test_gamma_half_rejected(self):
        with pytest.raises(ValueError):
            minimum_sample_size(0.5)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            minimum_sample_size(1.0)
        with pytest.raises(ValueError):
            minimum_sample_size(0.75, alpha=0.0)


class TestSampleSizeCurve:
    def test_matches_pointwise(self):
        gammas = np.array([0.7, 0.8])
        curve = sample_size_curve(gammas)
        assert curve[0] == minimum_sample_size(0.7)
        assert curve[1] == minimum_sample_size(0.8)

    def test_integer_dtype(self):
        assert sample_size_curve(np.array([0.75])).dtype.kind == "i"
