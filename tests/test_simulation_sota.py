"""Tests for the SOTA-timeline generation and significance bands (Figure 3)."""

import numpy as np
import pytest

from repro.simulation.sota import (
    load_sota_timeline,
    significance_timeline,
    synthetic_sota_timeline,
)


class TestLoadSotaTimeline:
    def test_known_benchmarks(self):
        for name in ("cifar10", "sst2"):
            timeline = load_sota_timeline(name)
            assert len(timeline) >= 5
            accuracies = [r.accuracy for r in timeline]
            assert accuracies == sorted(accuracies)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_sota_timeline("imagenet")


class TestSyntheticTimeline:
    def test_monotone_non_decreasing(self):
        timeline = synthetic_sota_timeline(n_results=20, random_state=0)
        accuracies = [r.accuracy for r in timeline]
        assert all(b >= a for a, b in zip(accuracies, accuracies[1:]))

    def test_years_ordered_and_bounded(self):
        timeline = synthetic_sota_timeline(start_year=2015, end_year=2020, random_state=1)
        years = [r.year for r in timeline]
        assert years == sorted(years)
        assert min(years) >= 2015 and max(years) <= 2020

    def test_accuracy_capped(self):
        timeline = synthetic_sota_timeline(
            n_results=50, start_accuracy=0.99, mean_increment=0.05, random_state=0
        )
        assert max(r.accuracy for r in timeline) <= 0.999

    def test_reproducible(self):
        a = synthetic_sota_timeline(random_state=3)
        b = synthetic_sota_timeline(random_state=3)
        assert [r.accuracy for r in a] == [r.accuracy for r in b]


class TestSignificanceTimeline:
    def test_small_sigma_makes_most_improvements_significant(self):
        timeline = load_sota_timeline("cifar10")
        entries = significance_timeline(timeline, sigma=1e-4)
        assert all(e.significant for e in entries[1:])

    def test_large_sigma_makes_improvements_insignificant(self):
        timeline = load_sota_timeline("cifar10")
        entries = significance_timeline(timeline, sigma=0.05)
        assert not any(e.significant for e in entries[1:])

    def test_first_entry_never_significant(self):
        entries = significance_timeline(load_sota_timeline("sst2"), sigma=0.001)
        assert not entries[0].significant

    def test_improvements_relative_to_best_so_far(self):
        # A result below the current best has a negative improvement and is
        # never significant.
        from repro.simulation.sota import PublishedResult

        results = [
            PublishedResult(2015, 0.9),
            PublishedResult(2016, 0.85),
            PublishedResult(2017, 0.95),
        ]
        entries = significance_timeline(results, sigma=0.001)
        assert entries[1].improvement < 0 and not entries[1].significant
        assert entries[2].significant

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            significance_timeline(load_sota_timeline("cifar10"), sigma=-0.1)
