"""The unified telemetry layer: registry, tracer, parity, endpoints.

The load-bearing contract under test is the *pure side channel*
guarantee — study results are byte-for-byte identical with telemetry
enabled or disabled, across the in-process, suite, and distributed
paths — plus the exposition/stitching mechanics: Prometheus text
rendering, deterministic suite trace roots that reassemble one span
tree across queue boundaries, the ``/metrics`` + ``/v1/telemetry/spans``
endpoints, and the ``repro trace`` CLI.
"""

import json
import math
import re
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.api import Session, StudySpec, get_study
from repro.serve import StudyServer
from repro.serve.jobs import Job, JobRegistry
from repro.telemetry import (
    MetricsRegistry,
    enabled,
    set_enabled,
    suite_trace_context,
    trace,
)
from repro.telemetry.log import get_logger, resolve_level, setup_logging
from repro.telemetry.metrics import Counter, Gauge, Histogram
from repro.telemetry.tracing import (
    Tracer,
    build_span_tree,
    filter_suite,
    load_spans,
    phase_aggregates,
    render_span_tree,
)

from suite_fixtures import canonical_rows as _rows
from suite_fixtures import make_suite

DEADLINE = 90.0

ANALYTIC = StudySpec(
    study="sample_size", params={"gammas": [0.6, 0.7]}, random_state=3
)
CACHED = StudySpec(
    study="variance",
    params=dict(get_study("variance").smoke_params),
    random_state=3,
)

#: Two-member parity suite: one analytic member, one that fits real
#: estimators through the measurement cache and object store.
PARITY_MEMBERS = [("sizes", ANALYTIC), ("noise", CACHED)]


@pytest.fixture(autouse=True)
def _telemetry_on():
    """Every test starts (and leaves the process) with telemetry on."""
    set_enabled(True)
    yield
    set_enabled(True)
    trace.detach_sink()


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_counts_and_renders_total_suffix(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_events", "Events.")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3
        text = registry.render()
        assert "# HELP repro_test_events Events." in text
        assert "# TYPE repro_test_events counter" in text
        assert "repro_test_events_total 3" in text

    def test_counter_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("repro_test_neg")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_counter_renders_escaped_sorted_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_test_lbl", labelnames=("kind", "who")
        )
        counter.labels(kind='a"b', who="x\ny").inc()
        text = registry.render()
        assert 'repro_test_lbl_total{kind="a\\"b",who="x\\ny"} 1' in text

    def test_label_schema_mismatch_raises(self):
        counter = MetricsRegistry().counter(
            "repro_test_schema", labelnames=("kind",)
        )
        with pytest.raises(ValueError):
            counter.labels(other="x")

    def test_reregistering_with_different_schema_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_re", labelnames=("a",))
        assert registry.counter("repro_test_re", labelnames=("a",)) is not None
        with pytest.raises(ValueError):
            registry.counter("repro_test_re", labelnames=("b",))
        with pytest.raises(ValueError):
            registry.gauge("repro_test_re", labelnames=("a",))

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_test_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_histogram_snapshot_is_cumulative(self):
        hist = MetricsRegistry().histogram(
            "repro_test_hist", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3
        assert snap["buckets"][10.0] == 4
        assert snap["buckets"][math.inf] == 5

    def test_histogram_render_has_inf_bucket_and_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_h2", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.0)
        text = registry.render()
        assert 'repro_test_h2_bucket{le="1"} 1' in text
        assert 'repro_test_h2_bucket{le="+Inf"} 2' in text
        assert "repro_test_h2_count 2" in text
        assert "repro_test_h2_sum 2.5" in text

    def test_exposition_lines_are_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_c", "help", labelnames=("k",)).labels(
            k="v"
        ).inc()
        registry.gauge("repro_test_g").set(1.5)
        registry.histogram("repro_test_h", buckets=(1.0,)).observe(0.2)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?\d+(\.\d+)?([eE]-?\d+)?|\+Inf|-Inf|NaN)$"
        )
        text = registry.render()
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            else:
                assert sample.match(line), line

    def test_concurrent_increments_are_exact(self):
        counter = MetricsRegistry().counter(
            "repro_test_race", labelnames=("t",)
        )
        threads = 8
        per_thread = 2000

        def work(index):
            child = counter.labels(t=str(index % 2))
            for _ in range(per_thread):
                child.inc()

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = counter.value(t="0") + counter.value(t="1")
        assert total == threads * per_thread

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.floats(
                min_value=0.0, max_value=1e6, allow_nan=False,
                allow_infinity=False,
            ),
            max_size=60,
        )
    )
    def test_histogram_bucket_properties(self, values):
        hist = Histogram("repro_test_prop", buckets=(0.001, 0.1, 1.0, 100.0))
        for value in values:
            hist.observe(value)
        snap = hist.snapshot()
        counts = [snap["buckets"][b] for b in (*hist.buckets, math.inf)]
        # Cumulative counts are monotone and end at the observation count.
        assert counts == sorted(counts)
        assert counts[-1] == len(values) == snap["count"]
        assert snap["sum"] == pytest.approx(sum(values), rel=1e-9, abs=1e-9)
        # Each bound's cumulative count matches a direct recount.
        for bound in hist.buckets:
            assert snap["buckets"][bound] == sum(
                1 for v in values if v <= bound
            )

    def test_disabled_telemetry_freezes_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_off")
        gauge = registry.gauge("repro_test_off_g")
        hist = registry.histogram("repro_test_off_h", buckets=(1.0,))
        set_enabled(False)
        try:
            assert not enabled()
            counter.inc()
            gauge.set(9)
            hist.observe(0.5)
        finally:
            set_enabled(True)
        assert counter.value() == 0
        assert gauge.value() == 0
        assert hist.snapshot()["count"] == 0


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_links_parent_ids_per_thread(self):
        tracer = Tracer()
        with tracer.span("suite/s") as outer:
            with tracer.span("member/m") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["member/m", "suite/s"]

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("task/t"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span["status"] == "error"
        assert span["attrs"]["error"] == "RuntimeError"

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=3)
        for index in range(10):
            with tracer.span(f"study/{index}"):
                pass
        names = [s["name"] for s in tracer.spans()]
        assert names == ["study/7", "study/8", "study/9"]

    def test_pinned_context_and_remote_parent(self):
        tracer = Tracer()
        root = suite_trace_context("fig")
        with tracer.span("suite/fig", context=root):
            pass
        with tracer.span("task/t", parent=root):
            pass
        by_name = {s["name"]: s for s in tracer.spans()}
        assert by_name["suite/fig"]["span_id"] == root.span_id
        assert by_name["task/t"]["parent_id"] == root.span_id
        assert by_name["task/t"]["trace_id"] == root.trace_id

    def test_suite_trace_context_is_deterministic(self):
        a, b = suite_trace_context("fig"), suite_trace_context("fig")
        assert (a.trace_id, a.span_id) == (b.trace_id, b.span_id)
        assert suite_trace_context("other").trace_id != a.trace_id

    def test_sink_roundtrip_and_torn_lines(self, tmp_path):
        tracer = Tracer()
        path = tracer.attach_sink(str(tmp_path))
        with tracer.span("study/x", rows=3):
            pass
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # worker killed mid-write
        spans = load_spans(str(tmp_path))
        assert len(spans) == 1
        assert spans[0]["name"] == "study/x"
        assert spans[0]["attrs"]["rows"] == 3

    def test_disabled_span_is_inert(self):
        tracer = Tracer()
        set_enabled(False)
        try:
            with tracer.span("study/x") as span:
                span.status = "error"  # absorbed, never raises
                span.set_attr("k", "v")
                assert span.context is None
        finally:
            set_enabled(True)
        assert tracer.spans() == []

    def test_tree_dedupes_span_ids_and_promotes_orphans(self):
        root = {"span_id": "r", "parent_id": None, "name": "suite/s",
                "start": 1.0, "duration": 1.0, "status": "ok", "attrs": {}}
        resumed_root = dict(root, duration=2.0)
        child = {"span_id": "c", "parent_id": "r", "name": "task/t",
                 "start": 1.5, "duration": 0.5, "status": "ok", "attrs": {}}
        orphan = {"span_id": "o", "parent_id": "gone", "name": "study/u",
                  "start": 2.0, "duration": 0.1, "status": "ok", "attrs": {}}
        roots, children = build_span_tree([root, child, orphan, resumed_root])
        assert sorted(r["span_id"] for r in roots) == ["o", "r"]
        assert [c["span_id"] for c in children["r"]] == ["c"]
        by_id = {r["span_id"]: r for r in roots}
        assert by_id["r"]["duration"] == 2.0  # last record wins
        rendered = render_span_tree([root, child, orphan])
        assert "suite/s" in rendered and "└─ task/t" in rendered

    def test_phase_aggregates(self):
        spans = [
            {"name": "task/a", "duration": 1.0, "status": "ok"},
            {"name": "task/b", "duration": 3.0, "status": "error"},
            {"name": "suite/s", "duration": 4.0, "status": "ok"},
        ]
        rows = {r["phase"]: r for r in phase_aggregates(spans)}
        assert rows["task"]["count"] == 2
        assert rows["task"]["errors"] == 1
        assert rows["task"]["mean_seconds"] == pytest.approx(2.0)
        assert rows["task"]["max_seconds"] == pytest.approx(3.0)
        assert rows["suite"]["count"] == 1


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_resolve_level_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert resolve_level() == 20  # INFO
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        assert resolve_level() == 10
        assert resolve_level("WARNING") == 30  # flag beats env
        with pytest.raises(ValueError):
            resolve_level("noisy")

    def test_setup_logging_is_idempotent(self):
        root = setup_logging("INFO")
        again = setup_logging("DEBUG")
        assert root is again
        tagged = [
            h for h in root.handlers if getattr(h, "_repro_handler", False)
        ]
        assert len(tagged) == 1
        assert root.level == 10

    def test_get_logger_namespaces(self):
        assert get_logger("worker").name == "repro.worker"
        assert get_logger("repro.suite").name == "repro.suite"


# ---------------------------------------------------------------------------
# Determinism parity: telemetry on vs off, bitwise
# ---------------------------------------------------------------------------


def _with_telemetry(on, fn):
    set_enabled(on)
    try:
        return fn()
    finally:
        set_enabled(True)


class TestParity:
    def test_run_parity(self, tmp_path):
        def run(tag):
            with Session(cache_dir=str(tmp_path / tag)) as session:
                return _rows(session.run(CACHED))

        on = _with_telemetry(True, lambda: run("on"))
        off = _with_telemetry(False, lambda: run("off"))
        assert on == off

    def test_run_suite_parity(self, tmp_path):
        def run(tag):
            suite = make_suite(
                tmp_path / tag, name="telemetry-suite", members=PARITY_MEMBERS
            )
            with Session.for_suite(suite) as session:
                result = session.run_suite(suite)
            return {name: _rows(result[name]) for name in suite.names}

        on = _with_telemetry(True, lambda: run("on"))
        off = _with_telemetry(False, lambda: run("off"))
        assert on == off

    def test_distributed_parity(self, tmp_path):
        def run(tag, distributed):
            suite = make_suite(
                tmp_path / tag, name="telemetry-dist", members=PARITY_MEMBERS
            )
            kwargs = (
                {"distributed": True, "poll_seconds": 0.05}
                if distributed
                else {}
            )
            with Session.for_suite(suite) as session:
                result = session.run_suite(suite, **kwargs)
            return {name: _rows(result[name]) for name in suite.names}

        distributed_on = _with_telemetry(
            True, lambda: run("dist-on", True)
        )
        in_process_off = _with_telemetry(
            False, lambda: run("inproc-off", False)
        )
        assert distributed_on == in_process_off


# ---------------------------------------------------------------------------
# Span-tree coherence for a distributed suite
# ---------------------------------------------------------------------------


class TestDistributedTrace:
    def test_distributed_suite_yields_one_coherent_tree(self, tmp_path):
        name = "telemetry-tree"
        suite = make_suite(tmp_path, name=name, members=PARITY_MEMBERS)
        with Session.for_suite(suite) as session:
            session.run_suite(suite, distributed=True, poll_seconds=0.05)
        spans = filter_suite(load_spans(str(tmp_path)), name)
        assert spans, "distributed run persisted no spans"
        context = suite_trace_context(name)
        roots, children = build_span_tree(spans)
        suite_roots = [r for r in roots if r["name"] == f"suite/{name}"]
        assert len(suite_roots) == 1
        root = suite_roots[0]
        assert root["span_id"] == context.span_id
        assert root["trace_id"] == context.trace_id
        task_spans = [s for s in spans if s["name"].startswith("task/")]
        assert len(task_spans) == len(PARITY_MEMBERS)
        for span in task_spans:
            # Stitched across the queue boundary by the task record.
            assert span["trace_id"] == context.trace_id
            assert span["parent_id"] == context.span_id
        # Each task nests the study execution beneath it.
        study_spans = [s for s in spans if s["name"].startswith("study/")]
        task_ids = {s["span_id"] for s in task_spans}
        assert study_spans
        assert all(s["parent_id"] in task_ids for s in study_spans)
        rendered = render_span_tree(spans)
        assert f"suite/{name}" in rendered and "task/" in rendered

    def test_resumed_suite_records_replay_spans(self, tmp_path):
        name = "telemetry-replay"
        suite = make_suite(tmp_path, name=name, members=PARITY_MEMBERS)
        with Session.for_suite(suite) as session:
            session.run_suite(suite)
        with Session.for_suite(suite) as session:
            session.run_suite(suite, resume=True)
        spans = filter_suite(load_spans(str(tmp_path)), name)
        replays = [s for s in spans if s["name"].startswith("replay/")]
        assert {s["name"] for s in replays} == {
            f"replay/{member}" for member, _ in PARITY_MEMBERS
        }
        assert all(s["attrs"].get("cached") for s in replays)


# ---------------------------------------------------------------------------
# Serve endpoints
# ---------------------------------------------------------------------------


@contextmanager
def serving(tmp_path, **config):
    cache_dir = str(tmp_path / "cache")
    session = Session(cache_dir=cache_dir)
    server = StudyServer(session, port=0, owns_session=True, **config)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _get_raw(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


def _get_json(server, path):
    status, _, body = _get_raw(server, path)
    return status, json.loads(body)


def _post_json(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _wait_terminal(server, job_id):
    deadline = time.time() + DEADLINE
    while time.time() < deadline:
        _, summary = _get_json(server, f"/v1/jobs/{job_id}")
        if summary["state"] in ("done", "failed", "cancelled"):
            return summary
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never settled")


class TestServeTelemetry:
    def test_metrics_endpoint_exposition(self, tmp_path):
        with serving(tmp_path) as server:
            status, headers, body = _get_raw(server, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in headers["Content-Type"]
            text = body.decode()
            assert "# TYPE repro_http_requests counter" in text
            assert "# TYPE repro_serve_jobs gauge" in text
            # The first scrape counted itself; the second one shows it.
            _, _, body = _get_raw(server, "/metrics")
            assert re.search(
                r'repro_http_requests_total\{method="GET",route="/metrics",'
                r'status="200"\} \d+',
                body.decode(),
            )

    def test_job_and_task_metrics_move(self, tmp_path):
        with serving(tmp_path) as server:
            _, accepted = _post_json(
                server, "/v1/studies", json.loads(ANALYTIC.to_json())
            )
            summary = _wait_terminal(server, accepted["job"])
            assert summary["state"] == "done"
            _, _, body = _get_raw(server, "/metrics")
            text = body.decode()
            assert 'repro_serve_jobs{state="done"} 1' in text

    def test_telemetry_spans_endpoint(self, tmp_path):
        with serving(tmp_path) as server:
            _, accepted = _post_json(
                server,
                "/v1/studies",
                {
                    "study": "sample_size",
                    "params": {"gammas": [0.6, 0.7]},
                    "random_state": 3,
                },
            )
            summary = _wait_terminal(server, accepted["job"])
            assert summary["state"] == "done"
            status, payload = _get_json(server, "/v1/telemetry/spans")
            assert status == 200
            assert payload["count"] == len(payload["spans"])
            names = [s["name"] for s in payload["spans"]]
            assert any(n.startswith("study/") for n in names)
            status, limited = _get_json(server, "/v1/telemetry/spans?limit=1")
            assert status == 200 and len(limited["spans"]) <= 1

    def test_spans_endpoint_rejects_bad_limit(self, tmp_path):
        with serving(tmp_path) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_raw(server, "/v1/telemetry/spans?limit=bogus")
            assert excinfo.value.code == 400


# ---------------------------------------------------------------------------
# Job event log: full tracebacks + attempt counts
# ---------------------------------------------------------------------------


class TestJobDiagnostics:
    def test_failed_job_records_full_traceback(self, tmp_path):
        with Session(cache_dir=str(tmp_path / "cache")) as session:
            registry = JobRegistry(session)
            job = registry._register("study", "boom")

            def execute():
                raise RuntimeError("kaboom")

            job.mark_running()
            registry._drive(job, execute)
            deadline = time.time() + 10
            while not job.terminal and time.time() < deadline:
                time.sleep(0.01)
            assert job.state == "failed"
            assert "kaboom" in job.error
            assert "Traceback (most recent call last)" in job.traceback
            end = job.events[-1]
            assert end["event"] == "end"
            assert "kaboom" in end["traceback"]
            assert job.to_dict()["traceback"] == job.traceback

    def test_harvest_queue_failure_copies_attempts_and_tracebacks(self):
        job = Job("suite-1", "suite", "s")

        class FakeQueue:
            def snapshot(self, detail=False):
                return SimpleNamespace(
                    attempts={"t1": 2, "t2": 1}, failed={"t1"}
                )

            def load_error(self, task_id):
                return "Traceback (most recent call last):\nboom"

        JobRegistry._harvest_queue_failure(
            job, SimpleNamespace(queue=FakeQueue())
        )
        assert job.attempts == {"t1": 2, "t2": 1}
        task_errors = [
            e for e in job.events if e["event"] == "task_error"
        ]
        assert len(task_errors) == 1
        assert task_errors[0]["task"] == "t1"
        assert task_errors[0]["attempts"] == 2
        assert "Traceback" in task_errors[0]["traceback"]


# ---------------------------------------------------------------------------
# CLI: repro trace + --log-level
# ---------------------------------------------------------------------------


class TestCLI:
    def test_trace_renders_tree_and_aggregates(self, tmp_path, capsys):
        name = "cli-trace"
        suite = make_suite(tmp_path, name=name, members=PARITY_MEMBERS)
        with Session.for_suite(suite) as session:
            session.run_suite(suite)
        assert main(["trace", str(tmp_path), "--suite", name]) == 0
        out = capsys.readouterr().out
        assert f"suite/{name}" in out
        assert "phase" in out and "mean" in out

    def test_trace_json_payload(self, tmp_path, capsys):
        suite = make_suite(tmp_path, name="cli-json", members=PARITY_MEMBERS)
        with Session.for_suite(suite) as session:
            session.run_suite(suite)
        assert main(["trace", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] and payload["phases"]
        phases = {row["phase"] for row in payload["phases"]}
        assert "suite" in phases

    def test_trace_empty_cache_dir(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 0
        assert "no spans" in capsys.readouterr().out

    def test_trace_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_log_level_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(ANALYTIC.to_json())
        assert main(["run", str(spec), "--log-level", "noisy"]) == 2
        assert "log level" in capsys.readouterr().err.lower()
