"""Shared suite-level fixtures for test_suite / test_sched / test_serve.

A plain module (not a conftest) so the import name never collides with
``benchmarks/conftest.py`` when pytest collects the whole repository.
"""

from __future__ import annotations

import json

from repro.api import StudySpec, SuiteSpec


#: 64 MiB — the CI smoke budget; generous for these tiny studies, so the
#: zero-miss resume and the never-exceeded assertions hold simultaneously.
STORE_BUDGET = 64 << 20

#: The canonical three-member figure suite at test scale: one study with
#: real measurements per task, one split-level study, one analytic study.
SUITE_MEMBERS = [
    (
        "fig1-variance",
        StudySpec(
            study="variance",
            params={
                "task_names": ["entailment"],
                "n_seeds": 2,
                "include_hpo": False,
                "dataset_size": 150,
            },
            random_state=0,
        ),
    ),
    (
        "fig2-binomial",
        StudySpec(
            study="binomial",
            params={"task_names": ["sentiment"], "n_splits": 2, "dataset_size": 150},
            random_state=1,
        ),
    ),
    (
        "figC1-sample-size",
        StudySpec(
            study="sample_size", params={"gammas": [0.7, 0.75]}, random_state=2
        ),
    ),
]


def make_suite(directory, *, name="fig-suite", members=SUITE_MEMBERS, **kwargs):
    """The canonical test suite bound to a tmp cache dir."""
    return SuiteSpec(
        name=name, specs=members, cache_dir=str(directory), **kwargs
    )


def canonical_rows(result) -> str:
    """Canonical JSON of a result's rows (numpy-safe, order-exact).

    Accepts a Study/SuiteResult (anything with ``to_json``) or the plain
    rows payload a service endpoint returns — the common currency of
    every bitwise row comparison in the suite/sched/serve tests.
    """
    if hasattr(result, "to_json"):
        rows = json.loads(result.to_json())["rows"]
    else:
        rows = result
    return json.dumps(rows, sort_keys=True)
