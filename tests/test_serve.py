"""End-to-end coverage of the HTTP/JSON study service (``repro serve``).

Every test drives a real :class:`~repro.serve.server.StudyServer` over a
real socket (``port=0``, kernel-assigned) with stdlib ``urllib`` as the
client — the same wire a curl user or the dashboard sees.  The core
contract under test: results obtained through the service are
byte-for-byte the rows a direct in-process :class:`Session` run
produces, whether the job ran on the submit pool (studies) or was
drained from the durable queue by an external worker (suites).
"""

import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.api import Session, StudySpec, SuiteSpec, get_study, list_studies
from repro.sched import Worker
from repro.serve import StudyServer

from suite_fixtures import canonical_rows as _rows

DEADLINE = 90.0  # generous wall-clock bound for smoke-scale jobs

STUDY = StudySpec(
    study="sample_size", params={"gammas": [0.6, 0.7]}, random_state=3
)

# sample_size is analytic (never touches the measurement cache); the
# variance study fits real estimators, so cache hit/miss counters move —
# what the shared-store test needs to observe.
CACHED_STUDY = StudySpec(
    study="variance",
    params=dict(get_study("variance").smoke_params),
    random_state=3,
)

SUITE = {
    "name": "pair",
    "specs": [
        {
            "name": "sizes",
            "spec": {
                "study": "sample_size",
                "params": {"gammas": [0.6, 0.7]},
                "random_state": 3,
            },
        },
        {
            "name": "noise",
            "spec": {
                "study": "variance",
                "params": dict(get_study("variance").smoke_params),
                "random_state": 3,
            },
        },
    ],
}


@contextmanager
def serving(tmp_path, **config):
    """A live StudyServer on a fresh cache dir; always torn down."""
    cache_dir = str(tmp_path / "cache")
    session = Session(cache_dir=cache_dir)
    server = StudyServer(session, port=0, owns_session=True, **config)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _get(server, path, **kwargs):
    with urllib.request.urlopen(server.url + path, timeout=30, **kwargs) as r:
        return r.status, json.loads(r.read())


def _post(server, path, payload):
    data = (
        payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    )
    request = urllib.request.Request(
        server.url + path, data=data, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _await_terminal(server, job_id, deadline=DEADLINE):
    end = time.time() + deadline
    while time.time() < end:
        _, summary = _get(server, f"/v1/jobs/{job_id}")
        if summary["state"] in ("done", "failed", "cancelled"):
            return summary
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} still {summary['state']!r}")


def _sse_events(server, job_id, headers=None):
    """Read a job's full (terminated) SSE stream into parsed events."""
    request = urllib.request.Request(
        server.url + f"/v1/jobs/{job_id}/events", headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        body = response.read().decode("utf-8")
    return [
        json.loads(line[len("data: ") :])
        for line in body.splitlines()
        if line.startswith("data: ")
    ]


class TestPlainEndpoints:
    def test_health_names_the_cache_dir(self, tmp_path):
        with serving(tmp_path) as server:
            status, health = _get(server, "/v1/health")
            assert status == 200
            assert health["status"] == "ok"
            assert health["cache_dir"] == server.registry.cache_dir

    def test_studies_catalogue_matches_the_registry(self, tmp_path):
        with serving(tmp_path) as server:
            status, catalogue = _get(server, "/v1/studies")
            assert status == 200
            assert [entry["name"] for entry in catalogue] == list_studies()
            assert all("smoke_params" in entry for entry in catalogue)

    def test_dashboard_is_self_contained_html(self, tmp_path):
        with serving(tmp_path) as server:
            with urllib.request.urlopen(server.url + "/", timeout=30) as r:
                assert r.status == 200
                assert r.headers["Content-Type"].startswith("text/html")
                html = r.read().decode("utf-8")
            assert "<!DOCTYPE html>" in html
            assert "EventSource" in html  # live progress wiring
            assert "src=" not in html  # no external assets

    def test_unknown_paths_and_jobs_are_404(self, tmp_path):
        with serving(tmp_path) as server:
            for path in ("/nope", "/v1/nope", "/v1/jobs/study-99"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server, path)
                assert excinfo.value.code == 404

    def test_queue_endpoint_is_empty_list_when_idle(self, tmp_path):
        with serving(tmp_path) as server:
            assert _get(server, "/v1/queue") == (200, [])


class TestStudyJobs:
    def test_submitted_study_matches_direct_run_bitwise(self, tmp_path):
        with serving(tmp_path) as server:
            status, accepted = _post(server, "/v1/studies", STUDY.to_dict())
            assert status == 202
            summary = _await_terminal(server, accepted["job"])
            assert summary["state"] == "done"
            assert summary["completed"] == summary["total"]
            _, payload = _get(server, f"/v1/jobs/{accepted['job']}/result")
            with Session(cache_dir=str(tmp_path / "direct")) as direct:
                reference = json.loads(direct.run(STUDY).to_json())
            assert _rows(payload["result"]["rows"]) == _rows(
                reference["rows"]
            )

    def test_progress_events_cover_every_shard_in_order(self, tmp_path):
        with serving(tmp_path) as server:
            _, accepted = _post(server, "/v1/studies", STUDY.to_dict())
            _await_terminal(server, accepted["job"])
            events = _sse_events(server, accepted["job"])
            # Sequence numbers are the append order: strictly consecutive.
            assert [event["seq"] for event in events] == list(
                range(len(events))
            )
            starts = [e for e in events if e["event"] == "start"]
            dones = [e for e in events if e["event"] == "done"]
            total = starts[0]["total"]
            assert len(starts) == len(dones) == total >= 1
            # Every shard's start precedes its done; dones carry timing.
            done_seq = {e["name"]: e["seq"] for e in dones}
            for start in starts:
                assert start["seq"] < done_seq[start["name"]]
            assert all(e["elapsed_seconds"] >= 0 for e in dones)
            assert events[-1]["event"] == "end"
            assert events[-1]["state"] == "done"

    def test_sse_resumes_from_last_event_id(self, tmp_path):
        with serving(tmp_path) as server:
            _, accepted = _post(server, "/v1/studies", STUDY.to_dict())
            _await_terminal(server, accepted["job"])
            full = _sse_events(server, accepted["job"])
            tail = _sse_events(
                server, accepted["job"], headers={"Last-Event-ID": "1"}
            )
            assert tail == full[2:]

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"study": "nope", "params": {}}, "unknown study"),
            (
                {"study": "variance", "params": {"bogus": 1}},
                "valid parameters",
            ),
            ({"study": "variance", "jobs": 4}, "unknown StudySpec fields"),
            ([1, 2, 3], "JSON object"),
            (b"{not json", "not valid JSON"),
        ],
    )
    def test_malformed_specs_are_400_with_the_cause(
        self, tmp_path, payload, fragment
    ):
        with serving(tmp_path) as server:
            status, body = _post(server, "/v1/studies", payload)
            assert status == 400
            assert fragment in body["error"]
            # Nothing half-registered: the job list stays empty.
            assert _get(server, "/v1/jobs") == (200, [])

    def test_concurrent_submissions_share_one_store(self, tmp_path):
        with serving(tmp_path) as server:
            jobs = []
            with_threads = []

            def submit():
                _, accepted = _post(
                    server, "/v1/studies", CACHED_STUDY.to_dict()
                )
                jobs.append(accepted["job"])

            for _ in range(2):
                thread = threading.Thread(target=submit)
                thread.start()
                with_threads.append(thread)
            for thread in with_threads:
                thread.join(timeout=30)
            assert len(jobs) == 2 and jobs[0] != jobs[1]
            payloads = []
            for job_id in jobs:
                assert _await_terminal(server, job_id)["state"] == "done"
                payloads.append(_get(server, f"/v1/jobs/{job_id}/result")[1])
            assert _rows(payloads[0]["result"]["rows"]) == _rows(
                payloads[1]["result"]["rows"]
            )
            # A third, sequential submission replays purely from the
            # shared store the first two populated.
            _, accepted = _post(
                server, "/v1/studies", CACHED_STUDY.to_dict()
            )
            _await_terminal(server, accepted["job"])
            _, replay = _get(server, f"/v1/jobs/{accepted['job']}/result")
            stats = replay["result"]["cache_stats"]
            assert stats["misses"] == 0 and stats["hits"] > 0

    def test_result_of_a_running_job_is_202_summary(self, tmp_path):
        with serving(tmp_path) as server:
            _, accepted = _post(server, "/v1/studies", STUDY.to_dict())
            # Immediately after submit the job may already be done on a
            # fast machine; accept either, but never an error.
            status, body = _get(
                server, f"/v1/jobs/{accepted['job']}/result"
            )
            assert status in (200, 202)
            assert body["id"] == accepted["job"]
            _await_terminal(server, accepted["job"])


@pytest.mark.slow
class TestSuiteJobs:
    def test_external_worker_drains_to_bitwise_identical_rows(
        self, tmp_path
    ):
        # The service only watches (participate=False): completion proves
        # the external worker really executed every task.
        with serving(tmp_path, participate=False) as server:
            status, accepted = _post(server, "/v1/suites", SUITE)
            assert status == 202 and accepted["kind"] == "suite"
            worker = Worker(server.registry.cache_dir, poll_seconds=0.05)
            stats = worker.run(exit_when_done=True, timeout=DEADLINE)
            assert stats.committed == len(SUITE["specs"])
            summary = _await_terminal(server, accepted["job"])
            assert summary["state"] == "done"
            _, payload = _get(server, f"/v1/jobs/{accepted['job']}/result")
            served = {
                member["name"]: _rows(member["rows"])
                for member in payload["result"]["results"]
            }
            suite = SuiteSpec.from_dict(SUITE).replace(
                cache_dir=str(tmp_path / "direct")
            )
            with Session.for_suite(suite) as direct:
                reference = json.loads(direct.run_suite(suite).to_json())
            expected = {
                member["name"]: _rows(member["rows"])
                for member in reference["results"]
            }
            assert served == expected

    def test_events_stream_one_done_per_member_in_completion_order(
        self, tmp_path
    ):
        with serving(tmp_path) as server:  # coordinator participates
            _, accepted = _post(server, "/v1/suites", SUITE)
            _await_terminal(server, accepted["job"])
            events = _sse_events(server, accepted["job"])
            dones = [
                e for e in events if e["event"] in ("done", "replay")
            ]
            names = {m["name"] for m in SUITE["specs"]}
            assert {e["name"] for e in dones} == names
            assert len(dones) == len(names)  # exactly one per member
            # Stream order is append order: seq strictly increasing.
            assert [e["seq"] for e in dones] == sorted(
                e["seq"] for e in dones
            )
            assert events[-1]["event"] == "end"

    def test_results_by_scope_serves_completion_records(self, tmp_path):
        with serving(tmp_path) as server:
            _, accepted = _post(server, "/v1/suites", SUITE)
            _await_terminal(server, accepted["job"])
            status, listing = _get(server, "/v1/results/pair")
            assert status == 200
            assert listing["members"] == sorted(
                m["name"] for m in SUITE["specs"]
            )
            assert listing["manifest"] is True
            status, record = _get(server, "/v1/results/pair/sizes")
            assert status == 200
            assert record["record"] == 1 and record["rows"]
            status, manifest = _get(server, "/v1/results/pair/manifest")
            assert {m["name"] for m in manifest["results"]} == {
                m["name"] for m in SUITE["specs"]
            }

    def test_unknown_scopes_are_404(self, tmp_path):
        with serving(tmp_path) as server:
            for path in (
                "/v1/results/absent",
                "/v1/results/../etc",
                "/v1/results/pair/absent",
                "/v1/reports/absent",
                "/v1/reports/../etc",
            ):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server, path)
                assert excinfo.value.code == 404

    def test_reports_endpoint_matches_offline_builder(self, tmp_path):
        """GET /v1/reports/<suite> is the same payload ``repro report``
        builds offline from the cache — records in, zero re-execution."""
        from repro.report import build_suite_report

        with serving(tmp_path) as server:
            _, accepted = _post(server, "/v1/suites", SUITE)
            _await_terminal(server, accepted["job"])
            status, payload = _get(server, "/v1/reports/pair")
            assert status == 200
            assert payload["suite"] == "pair"
            assert [m["name"] for m in payload["members"]] == [
                m["name"] for m in SUITE["specs"]
            ]
            offline = build_suite_report(server.registry.cache_dir, "pair")
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                offline, sort_keys=True
            )

    def test_malformed_suite_is_400_with_positional_error(self, tmp_path):
        with serving(tmp_path) as server:
            bad = {
                "name": "broken",
                "specs": [
                    {
                        "name": "ok",
                        "spec": {"study": "sample_size", "params": {}},
                    },
                    {"name": "sick", "spec": {"study": "nope", "params": {}}},
                ],
            }
            status, body = _post(server, "/v1/suites", bad)
            assert status == 400
            assert "suite spec 'sick'" in body["error"]
            assert "unknown study 'nope'" in body["error"]
            assert _get(server, "/v1/jobs") == (200, [])

    def test_client_supplied_cache_dir_is_overridden(self, tmp_path):
        elsewhere = str(tmp_path / "elsewhere")
        hijack = dict(SUITE, cache_dir=elsewhere)
        with serving(tmp_path) as server:
            _, accepted = _post(server, "/v1/suites", hijack)
            summary = _await_terminal(server, accepted["job"])
            assert summary["state"] == "done"
            # Records landed in the service's store, not the client's path.
            status, listing = _get(server, "/v1/results/pair")
            assert status == 200 and listing["members"]
            import os

            assert not os.path.exists(elsewhere)


class TestShutdown:
    def test_graceful_shutdown_cancels_live_jobs_and_ends_streams(
        self, tmp_path
    ):
        # Watch-only with no worker: the suite job can never finish on
        # its own, so it is reliably live when the server goes down.
        cache_dir = str(tmp_path / "cache")
        session = Session(cache_dir=cache_dir)
        server = StudyServer(
            session, port=0, owns_session=True, participate=False
        )
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        _, accepted = _post(server, "/v1/suites", SUITE)
        job = server.registry.get(accepted["job"])
        assert not job.terminal

        events = []
        streamed = threading.Event()

        def stream():
            request = urllib.request.Request(
                server.url + f"/v1/jobs/{job.id}/events"
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = response.read().decode("utf-8")  # until stream ends
            events.extend(
                json.loads(line[len("data: ") :])
                for line in body.splitlines()
                if line.startswith("data: ")
            )
            streamed.set()

        reader = threading.Thread(target=stream)
        reader.start()
        time.sleep(0.2)  # let the stream attach before the shutdown
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        assert streamed.wait(timeout=30), "SSE stream never terminated"
        reader.join(timeout=10)
        assert job.state == "cancelled"
        assert events and events[-1]["event"] == "end"
        assert events[-1]["state"] == "cancelled"
        # The durable queue survives shutdown: a worker fleet (or a
        # resubmission with resume) can still finish the suite.
        from repro.sched import TaskQueue

        survivors = TaskQueue.discover(cache_dir)
        assert [queue.suite_name for queue in survivors] == ["pair"]

    def test_submissions_after_close_are_rejected(self, tmp_path):
        with serving(tmp_path) as server:
            server.registry.close()
            status, body = _post(server, "/v1/studies", STUDY.to_dict())
            assert status == 503
            assert "shutting down" in body["error"]
