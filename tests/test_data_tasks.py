"""Tests for the case-study analogue task registry."""

import pytest

from repro.data.tasks import CaseStudyTask, get_task, list_tasks
from repro.pipelines.base import Pipeline


class TestRegistry:
    def test_five_case_studies_registered(self):
        assert len(list_tasks()) == 5

    def test_expected_names(self):
        assert set(list_tasks()) == {
            "image-classification",
            "segmentation",
            "sentiment",
            "entailment",
            "peptide-binding",
        }

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            get_task("not-a-task")


class TestTasks:
    @pytest.mark.parametrize("name", ["entailment", "sentiment", "peptide-binding"])
    def test_dataset_generation(self, name):
        task = get_task(name)
        dataset = task.make_dataset(random_state=0, n_samples=100)
        assert dataset.n_samples == 100
        assert dataset.task_type == task.task_type

    @pytest.mark.parametrize("name", ["image-classification", "segmentation"])
    def test_pipeline_construction(self, name):
        task = get_task(name)
        pipeline = task.make_pipeline(n_epochs=2)
        assert isinstance(pipeline, Pipeline)
        assert pipeline.metric_name == task.metric_name

    def test_pipeline_overrides_forwarded(self):
        pipeline = get_task("entailment").make_pipeline(hidden_sizes=(4,), n_epochs=1)
        assert pipeline.hidden_sizes == (4,)
        assert pipeline.n_epochs == 1

    def test_regression_task_metadata(self):
        task = get_task("peptide-binding")
        assert task.task_type == "regression"
        assert "MHC" in task.paper_case_study

    def test_task_dataset_reproducibility(self):
        task = get_task("sentiment")
        a = task.make_dataset(random_state=7, n_samples=60)
        b = task.make_dataset(random_state=7, n_samples=60)
        assert (a.X == b.X).all()
