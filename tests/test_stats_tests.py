"""Tests for z/t/paired-t location tests."""

import numpy as np
import pytest

from repro.stats.tests import paired_t_test, t_test, z_test


class TestZTest:
    def test_detects_large_difference(self, rng):
        a = rng.normal(loc=1.0, size=100)
        b = rng.normal(loc=0.0, size=100)
        assert z_test(a, b).significant()

    def test_no_difference_not_significant(self, rng):
        a = rng.normal(size=100)
        b = rng.normal(size=100)
        assert z_test(a, b).pvalue > 0.01

    def test_one_sided_direction(self, rng):
        worse = rng.normal(loc=-1.0, size=100)
        better = rng.normal(loc=0.0, size=100)
        assert not z_test(worse, better).significant()

    def test_effect_sign(self, rng):
        a = rng.normal(loc=2.0, size=50)
        b = rng.normal(loc=0.0, size=50)
        assert z_test(a, b).effect > 0


class TestTTest:
    def test_matches_z_for_large_samples(self, rng):
        a = rng.normal(loc=0.3, size=500)
        b = rng.normal(loc=0.0, size=500)
        assert t_test(a, b).pvalue == pytest.approx(z_test(a, b).pvalue, abs=0.01)

    def test_df_reported(self, rng):
        res = t_test(rng.normal(size=20), rng.normal(size=20))
        assert res.df > 0


class TestPairedTTest:
    def test_requires_equal_length(self):
        with pytest.raises(ValueError):
            paired_t_test(np.ones(3), np.ones(4))

    def test_more_powerful_than_unpaired_with_shared_noise(self, rng):
        shared = rng.normal(scale=5.0, size=30)
        a = shared + 0.2 + rng.normal(scale=0.05, size=30)
        b = shared + rng.normal(scale=0.05, size=30)
        assert paired_t_test(a, b).pvalue < t_test(a, b).pvalue
        assert paired_t_test(a, b).significant()

    def test_identical_samples_not_significant(self):
        values = np.linspace(0, 1, 10)
        assert not paired_t_test(values, values.copy()).significant()
