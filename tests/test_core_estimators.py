"""Tests for the ideal (Algorithm 1) and biased (Algorithm 2) estimators."""

import numpy as np
import pytest

from repro.core.estimators import (
    EstimatorResult,
    FixHOptEstimator,
    IdealEstimator,
    estimator_cost,
)


class TestEstimatorCost:
    def test_ideal_cost(self):
        assert estimator_cost(100, 200, ideal=True) == 100 * 201

    def test_biased_cost(self):
        assert estimator_cost(100, 200, ideal=False) == 300

    def test_paper_cost_ratio_scale(self):
        # With k=100 and T=200 trials the ideal estimator costs ~67x more;
        # the paper's 51x figure uses wall-clock hours, same order of magnitude.
        ratio = estimator_cost(100, 200, ideal=True) / estimator_cost(100, 200, ideal=False)
        assert 40 < ratio < 80

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimator_cost(0, 10, ideal=True)


class TestEstimatorResult:
    def test_summary_statistics(self):
        result = EstimatorResult(
            scores=np.array([0.5, 0.7, 0.9]), estimator_name="x", n_fits=3
        )
        assert result.k == 3
        assert result.mean == pytest.approx(0.7)
        assert result.std == pytest.approx(np.std([0.5, 0.7, 0.9], ddof=1))
        assert result.standard_error == pytest.approx(result.std / np.sqrt(3))

    def test_single_score_zero_std(self):
        result = EstimatorResult(scores=np.array([0.5]), estimator_name="x", n_fits=1)
        assert result.std == 0.0


class TestIdealEstimator:
    def test_number_of_measurements_and_fits(self, classification_process):
        result = IdealEstimator().estimate(classification_process, 3, random_state=0)
        assert result.k == 3
        assert result.n_fits == 3 * (classification_process.hpo_budget + 1)

    def test_scores_vary_across_measurements(self, hard_process):
        result = IdealEstimator().estimate(hard_process, 4, random_state=0)
        assert np.std(result.scores) > 0

    def test_reproducible_with_seed(self, classification_process):
        a = IdealEstimator().estimate(classification_process, 2, random_state=7)
        b = IdealEstimator().estimate(classification_process, 2, random_state=7)
        np.testing.assert_array_equal(a.scores, b.scores)


class TestFixHOptEstimator:
    def test_runs_single_hpo(self, classification_process):
        result = FixHOptEstimator("all").estimate(classification_process, 4, random_state=0)
        assert result.n_fits == classification_process.hpo_budget + 4
        assert result.hparams is not None

    def test_hparams_shared_across_measurements(self, classification_process):
        result = FixHOptEstimator("all").estimate(classification_process, 3, random_state=0)
        assert all(m.hparams == result.measurements[0].hparams for m in result.measurements)

    def test_supplied_hparams_skip_hpo(self, classification_process):
        result = FixHOptEstimator("data").estimate(
            classification_process,
            3,
            random_state=0,
            hparams=classification_process.pipeline.default_hparams(),
        )
        assert result.n_fits == 3

    def test_init_only_randomization_keeps_split_fixed(self, hard_process):
        result = FixHOptEstimator("init").estimate(
            hard_process, 3, random_state=0,
            hparams=hard_process.pipeline.default_hparams(),
        )
        data_seeds = {m.seeds.seed_for("data") for m in result.measurements}
        init_seeds = {m.seeds.seed_for("init") for m in result.measurements}
        assert len(data_seeds) == 1
        assert len(init_seeds) == 3

    def test_all_subset_randomizes_learning_sources(self, hard_process):
        result = FixHOptEstimator("all").estimate(
            hard_process, 3, random_state=0,
            hparams=hard_process.pipeline.default_hparams(),
        )
        data_seeds = {m.seeds.seed_for("data") for m in result.measurements}
        hopt_seeds = {m.seeds.seed_for("hopt") for m in result.measurements}
        assert len(data_seeds) == 3
        assert len(hopt_seeds) == 1

    def test_unknown_subset_rejected(self):
        with pytest.raises(ValueError):
            FixHOptEstimator("everything")

    def test_data_randomization_varies_scores_more_than_init(self, hard_process):
        # Mirrors the paper's Figure 1 ordering: data bootstrap variance
        # should not be smaller than weight-init variance.
        defaults = hard_process.pipeline.default_hparams()
        data = FixHOptEstimator("data").estimate(
            hard_process, 8, random_state=1, hparams=defaults
        )
        init = FixHOptEstimator("init").estimate(
            hard_process, 8, random_state=1, hparams=defaults
        )
        assert data.std >= 0.0 and init.std >= 0.0
        assert data.std > 0
