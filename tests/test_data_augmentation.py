"""Tests for stochastic data augmentation."""

import numpy as np
import pytest

from repro.data.augmentation import FeatureDropout, GaussianJitter, augment_dataset


class TestGaussianJitter:
    def test_changes_features(self, blobs_dataset, rng):
        out = GaussianJitter(scale=0.5)(blobs_dataset.X, rng)
        assert not np.allclose(out, blobs_dataset.X)

    def test_zero_scale_is_identity(self, blobs_dataset, rng):
        out = GaussianJitter(scale=0.0)(blobs_dataset.X, rng)
        np.testing.assert_array_equal(out, blobs_dataset.X)

    def test_negative_scale_rejected(self, blobs_dataset, rng):
        with pytest.raises(ValueError):
            GaussianJitter(scale=-1.0)(blobs_dataset.X, rng)

    def test_does_not_mutate_input(self, blobs_dataset, rng):
        original = blobs_dataset.X.copy()
        GaussianJitter(scale=0.5)(blobs_dataset.X, rng)
        np.testing.assert_array_equal(blobs_dataset.X, original)


class TestFeatureDropout:
    def test_drops_roughly_rate_fraction(self, rng):
        X = np.ones((200, 50))
        out = FeatureDropout(rate=0.3)(X, rng)
        dropped = np.mean(out == 0)
        assert abs(dropped - 0.3) < 0.05

    def test_zero_rate_identity(self, rng):
        X = np.ones((5, 5))
        np.testing.assert_array_equal(FeatureDropout(rate=0.0)(X, rng), X)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            FeatureDropout(rate=1.5)(np.ones((2, 2)), rng)


class TestAugmentDataset:
    def test_applies_transforms_in_sequence(self, blobs_dataset, rng):
        augmented = augment_dataset(
            blobs_dataset, [GaussianJitter(0.1), FeatureDropout(0.2)], rng
        )
        assert augmented.n_samples == blobs_dataset.n_samples
        assert not np.allclose(augmented.X, blobs_dataset.X)
        np.testing.assert_array_equal(augmented.y, blobs_dataset.y)

    def test_reproducible_given_same_generator_seed(self, blobs_dataset):
        a = augment_dataset(blobs_dataset, [GaussianJitter(0.1)], np.random.default_rng(0))
        b = augment_dataset(blobs_dataset, [GaussianJitter(0.1)], np.random.default_rng(0))
        np.testing.assert_array_equal(a.X, b.X)
