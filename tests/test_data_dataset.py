"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset


class TestDatasetValidation:
    def test_rejects_1d_features(self):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(X=np.ones(5), y=np.ones(5))

    def test_rejects_2d_targets(self):
        with pytest.raises(ValueError, match="1-D"):
            Dataset(X=np.ones((5, 2)), y=np.ones((5, 1)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="same number"):
            Dataset(X=np.ones((5, 2)), y=np.ones(4))

    def test_rejects_bad_task_type(self):
        with pytest.raises(ValueError, match="task_type"):
            Dataset(X=np.ones((3, 2)), y=np.zeros(3), task_type="ranking")


class TestDatasetProperties:
    def test_shapes(self, blobs_dataset):
        assert blobs_dataset.n_samples == len(blobs_dataset) == blobs_dataset.X.shape[0]
        assert blobs_dataset.n_features == blobs_dataset.X.shape[1]

    def test_n_classes(self, blobs_dataset):
        assert blobs_dataset.n_classes == 3

    def test_n_classes_none_for_regression(self, regression_dataset):
        assert regression_dataset.n_classes is None


class TestDatasetOperations:
    def test_subset_with_repeats(self, blobs_dataset):
        indices = np.array([0, 0, 1])
        sub = blobs_dataset.subset(indices)
        assert sub.n_samples == 3
        np.testing.assert_array_equal(sub.X[0], sub.X[1])

    def test_shuffled_preserves_content(self, blobs_dataset, rng):
        shuffled = blobs_dataset.shuffled(rng)
        assert shuffled.n_samples == blobs_dataset.n_samples
        assert sorted(shuffled.y.tolist()) == sorted(blobs_dataset.y.tolist())

    def test_concatenate(self, blobs_dataset):
        combined = blobs_dataset.concatenate(blobs_dataset)
        assert combined.n_samples == 2 * blobs_dataset.n_samples

    def test_concatenate_rejects_mismatched_types(self, blobs_dataset, regression_dataset):
        with pytest.raises(ValueError):
            blobs_dataset.concatenate(regression_dataset)
