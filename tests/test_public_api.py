"""Tests for the top-level public API and an end-to-end workflow."""

import numpy as np
import pytest

import repro
from repro import (
    BenchmarkProcess,
    FixHOptEstimator,
    IdealEstimator,
    SeedBundle,
    compare_pipelines,
    get_task,
    list_tasks,
    minimum_sample_size,
    probability_of_outperforming_test,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_task_registry_exposed(self):
        assert "entailment" in list_tasks()


class TestEndToEndWorkflow:
    """The full recommended workflow of the paper on a tiny analogue task."""

    @pytest.fixture(scope="class")
    def setup(self):
        task = get_task("entailment")
        dataset = task.make_dataset(random_state=0, n_samples=250)
        strong = BenchmarkProcess(
            dataset, task.make_pipeline(hidden_sizes=(32,), n_epochs=8), hpo_budget=3
        )
        weak = BenchmarkProcess(
            dataset, task.make_pipeline(hidden_sizes=(1,), n_epochs=1), hpo_budget=3
        )
        return strong, weak

    def test_estimators_and_comparison(self, setup):
        strong, weak = setup
        # Step 1: estimate performance with the affordable biased estimator.
        estimator = FixHOptEstimator(randomize="all")
        estimate = estimator.estimate(strong, 6, random_state=0)
        assert 0.0 <= estimate.mean <= 1.0
        # Step 2: decide sample size, run the paired comparison.
        k = min(10, minimum_sample_size(0.75))
        report, scores = compare_pipelines(strong, weak, k=k, random_state=0)
        assert report.n_pairs == k
        # The strong pipeline should not lose to the weak one.
        assert report.p_a_gt_b >= 0.5

    def test_ideal_estimator_unbiased_reference(self, setup):
        strong, _ = setup
        ideal = IdealEstimator().estimate(strong, 2, random_state=1)
        biased = FixHOptEstimator("all").estimate(strong, 2, random_state=1)
        assert abs(ideal.mean - biased.mean) < 0.5

    def test_significance_workflow_direct(self, rng):
        a = rng.normal(0.8, 0.02, size=29)
        b = rng.normal(0.7, 0.02, size=29)
        report = probability_of_outperforming_test(a, b, random_state=0)
        assert report.meaningful
