"""Tests for the plain-text table formatting."""

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "b" in text
        assert "2.5" in text and "3" in text

    def test_title_included(self):
        text = format_table([{"x": 1}], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_empty_rows(self):
        assert "(empty)" in format_table([])

    def test_column_order_respected(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_column_value_blank(self):
        text = format_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in text

    def test_precision_applied(self):
        text = format_table([{"v": 0.123456789}], precision=3)
        assert "0.123" in text and "0.1235" not in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series([1, 2], [10.0, 20.0], x_name="k", y_name="std")
        assert "k" in text and "std" in text
        assert "10" in text and "20" in text
