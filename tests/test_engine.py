"""Tests for the parallel cached measurement engine (repro.engine)."""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.core.estimators import FixHOptEstimator, IdealEstimator
from repro.core.sources import VarianceSource
from repro.core.variance import hpo_variance_study, variance_decomposition_study
from repro.engine import (
    CancellableExecutor,
    FileStore,
    MeasurementCache,
    ParallelExecutor,
    StudyCancelled,
    StudyRunner,
    WorkItem,
    measurement_key,
    resolve_n_jobs,
)
from repro.hpo.grid import NoisyGridSearch
from repro.hpo.random_search import RandomSearch
from repro.utils.rng import SeedBundle, SeedScope


def _square(x):
    return x * x


def _mark_and_sleep(item):
    """Process-pool work item: drop a marker file, then dawdle (top level
    so it pickles)."""
    directory, index = item
    with open(os.path.join(directory, f"item-{index}"), "w"):
        pass
    time.sleep(0.05)
    return index


class TestParallelExecutor:
    def test_serial_map_preserves_order(self):
        executor = ParallelExecutor(1)
        assert executor.map(_square, range(7)) == [x * x for x in range(7)]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_map_preserves_order(self, backend):
        executor = ParallelExecutor(3, backend=backend)
        assert executor.map(_square, range(20)) == [x * x for x in range(20)]

    def test_empty_items(self):
        assert ParallelExecutor(4).map(_square, []) == []

    def test_single_worker_is_serial(self):
        assert ParallelExecutor(1, backend="process").effective_backend == "serial"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(2, backend="mpi")

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(-1) >= 1
        assert resolve_n_jobs(None) == 1


class TestMeasurementKey:
    def test_same_inputs_same_key(self, classification_process, seed_bundle):
        key_a = measurement_key(classification_process, seed_bundle, None)
        key_b = measurement_key(classification_process, seed_bundle, None)
        assert key_a == key_b

    def test_seeds_change_key(self, classification_process, seed_bundle, rng):
        other = seed_bundle.randomized(["init"], rng)
        assert measurement_key(classification_process, seed_bundle, None) != (
            measurement_key(classification_process, other, None)
        )

    def test_hparams_change_key(self, classification_process, seed_bundle):
        base = measurement_key(classification_process, seed_bundle, None)
        assert base != measurement_key(
            classification_process, seed_bundle, {"learning_rate": 0.5}
        )

    def test_hpo_flag_changes_key(self, classification_process, seed_bundle):
        assert measurement_key(
            classification_process, seed_bundle, None, with_hpo=False
        ) != measurement_key(classification_process, seed_bundle, None, with_hpo=True)


class TestMeasurementCache:
    def test_hit_miss_accounting(self, classification_process, seed_bundle):
        cache = MeasurementCache()
        runner = StudyRunner(classification_process, cache=cache)
        items = [WorkItem(seeds=seed_bundle)]
        first = runner.run(items)
        second = runner.run(items)
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.hit_rate == pytest.approx(0.5)
        assert first[0].test_score == second[0].test_score
        assert len(cache) == 1

    def test_within_batch_deduplication(self, classification_process, seed_bundle):
        cache = MeasurementCache()
        runner = StudyRunner(classification_process, cache=cache)
        measurements = runner.run([WorkItem(seeds=seed_bundle)] * 4)
        # One fit, three replays; all four results identical and ordered.
        assert cache.misses == 1
        assert cache.hits == 3
        scores = {m.test_score for m in measurements}
        assert len(scores) == 1

    def test_cached_replay_is_bitwise_identical(self, classification_process, rng):
        cache = MeasurementCache()
        runner = StudyRunner(classification_process, cache=cache)
        items = [WorkItem(seeds=SeedBundle.random(rng)) for _ in range(3)]
        uncached = StudyRunner(classification_process).run_scores(items)
        warm = runner.run_scores(items)
        replayed = runner.run_scores(items)
        np.testing.assert_array_equal(uncached, warm)
        np.testing.assert_array_equal(warm, replayed)

    def test_persistence_roundtrip(self, tmp_path, classification_process, seed_bundle):
        path = str(tmp_path / "cache.pkl")
        cache = MeasurementCache(path)
        runner = StudyRunner(classification_process, cache=cache)
        score = runner.run_scores([WorkItem(seeds=seed_bundle)])[0]
        cache.save()

        reloaded = MeasurementCache(path)
        assert len(reloaded) == 1
        rerun = StudyRunner(classification_process, cache=reloaded)
        assert rerun.run_scores([WorkItem(seeds=seed_bundle)])[0] == score
        assert reloaded.hits == 1 and reloaded.misses == 0

    def test_missing_file_is_fine(self, tmp_path):
        cache = MeasurementCache(str(tmp_path / "absent.pkl"))
        assert len(cache) == 0
        with pytest.raises(FileNotFoundError):
            cache.load(str(tmp_path / "absent.pkl"))

    def test_max_entries_evicts_oldest(self):
        cache = MeasurementCache(max_entries=2)
        cache.put("a", "ma")
        cache.put("b", "mb")
        cache.put("c", "mc")
        assert len(cache) == 2
        assert "a" not in cache and "c" in cache

    def test_eviction_is_lru_not_fifo(self):
        cache = MeasurementCache(max_entries=2)
        cache.put("a", "ma")
        cache.put("b", "mb")
        cache.get("a")  # refresh: "a" is now the most recently used
        cache.put("c", "mc")
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = MeasurementCache(max_entries=2)
        cache.put("a", "ma")
        cache.put("b", "mb")
        cache.put("a", "ma2")  # rewrite refreshes "a"
        cache.put("c", "mc")
        assert "a" in cache and "b" not in cache
        assert cache.get("a") == "ma2"

    def test_max_bytes_budget_evicts_lru(self):
        one_entry = len(__import__("pickle").dumps("m" * 64))
        cache = MeasurementCache(max_bytes=2 * one_entry)
        cache.put("a", "a" * 64)
        cache.put("b", "b" * 64)
        assert len(cache) == 2 and cache.total_bytes <= 2 * one_entry
        cache.put("c", "c" * 64)
        assert "a" not in cache and len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] == cache.total_bytes > 0

    def test_oversized_entry_still_cached(self):
        cache = MeasurementCache(max_bytes=8)  # smaller than any entry
        cache.put("big", "x" * 1024)
        assert "big" in cache and len(cache) == 1

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            MeasurementCache(max_entries=0)
        with pytest.raises(ValueError):
            MeasurementCache(max_bytes=0)

    def test_load_respects_budgets(self, tmp_path):
        path = str(tmp_path / "cache.pkl")
        full = MeasurementCache(path)
        for key in "abcd":
            full.put(key, f"m{key}")
        full.save()
        bounded = MeasurementCache(path, max_entries=2)
        assert len(bounded) == 2
        assert "d" in bounded  # most recently merged entries survive

    def test_stats_include_eviction_counters(self):
        stats = MeasurementCache().stats()
        assert {"hits", "misses", "hit_rate", "entries", "evictions", "bytes"} <= set(
            stats
        )

    def test_clear_resets_counters(self):
        cache = MeasurementCache()
        cache.put("a", "ma")
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_stats_keys(self):
        stats = MeasurementCache().stats()
        assert {"hits", "misses", "hit_rate", "entries"} <= set(stats)


class TestFileStore:
    def test_roundtrip_and_scan(self, tmp_path):
        store = FileStore(str(tmp_path / "store"))
        assert store.read("deadbeef") is None
        assert len(store) == 0
        size = store.write("deadbeef", {"score": 1.0})
        assert size > 0
        assert store.read("deadbeef") == {"score": 1.0}
        assert "deadbeef" in store
        store.write("dd00aa", [1, 2, 3])
        assert sorted(store.keys()) == ["dd00aa", "deadbeef"]

    def test_rewrite_is_atomic_replace(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.write("aa11", "first")
        store.write("aa11", "second")
        assert store.read("aa11") == "second"
        assert len(store) == 1

    def test_invalid_keys_rejected(self, tmp_path):
        store = FileStore(str(tmp_path))
        for bad in ("", "../escape", "a/b", "x.y"):
            with pytest.raises(ValueError):
                store.write(bad, 1)

    def test_index_roundtrip(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.write("aa11", "payload")
        store.write_index()
        index = store.read_index()
        assert index["entries"] == 1
        assert "aa11" in index["sizes"]
        # A stale index never hides entries: keys() scans the tree.
        store.write("bb22", "later")
        assert len(store.keys()) == 2


class TestCacheDirStore:
    def test_put_writes_through_and_get_falls_back(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer = MeasurementCache(cache_dir=directory)
        writer.put("aabb", {"m": 1})
        # A different cache instance (another worker/session) sees the entry.
        reader = MeasurementCache(cache_dir=directory)
        assert reader.get("aabb") == {"m": 1}
        assert reader.hits == 1 and reader.misses == 0 and reader.store_hits == 1
        assert reader.stats()["store_hits"] == 1
        # Second get is served from memory, not the store.
        assert reader.get("aabb") == {"m": 1}
        assert reader.store_hits == 1 and reader.hits == 2

    def test_memory_eviction_keeps_disk_entries(self, tmp_path):
        cache = MeasurementCache(cache_dir=str(tmp_path), max_entries=1)
        cache.put("aa11", "one")
        cache.put("bb22", "two")  # evicts aa11 from memory only
        assert cache.evictions == 1
        assert cache.get("aa11") == "one"  # replayed from disk
        assert cache.store_hits == 1

    def test_save_and_load_use_index_not_pickle(self, tmp_path):
        cache = MeasurementCache(cache_dir=str(tmp_path))
        cache.put("aa11", "one")
        assert cache.save() == str(tmp_path)
        assert cache.load() == 1
        assert cache.store.read_index()["entries"] == 1

    def test_path_and_cache_dir_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            MeasurementCache(str(tmp_path / "c.pkl"), cache_dir=str(tmp_path))

    def test_persistent_flag(self, tmp_path):
        assert not MeasurementCache().persistent
        assert MeasurementCache(cache_dir=str(tmp_path)).persistent
        assert MeasurementCache(str(tmp_path / "c.pkl")).persistent

    def test_concurrent_writers_do_not_corrupt(self, tmp_path):
        """Many caches hammering one directory: every entry survives intact."""
        directory = str(tmp_path / "shared")

        def worker(worker_id):
            cache = MeasurementCache(cache_dir=directory)
            for i in range(25):
                cache.put(f"{worker_id}{i:02d}aa", (worker_id, i))
                cache.get(f"{worker_id}{i:02d}aa")

        threads = [
            threading.Thread(target=worker, args=(f"w{n}",)) for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        fresh = MeasurementCache(cache_dir=directory)
        assert fresh.load() == 6 * 25
        for n in range(6):
            for i in range(25):
                assert fresh.get(f"w{n}{i:02d}aa") == (f"w{n}", i)
        assert fresh.misses == 0

    def test_runner_replays_from_store_across_instances(
        self, tmp_path, classification_process, seed_bundle
    ):
        directory = str(tmp_path / "measurements")
        warm = StudyRunner(
            classification_process, cache=MeasurementCache(cache_dir=directory)
        )
        score = warm.run_scores([WorkItem(seeds=seed_bundle)])[0]
        cold_cache = MeasurementCache(cache_dir=directory)
        cold = StudyRunner(classification_process, cache=cold_cache)
        assert cold.run_scores([WorkItem(seeds=seed_bundle)])[0] == score
        assert cold_cache.misses == 0 and cold_cache.store_hits == 1


class TestProcessBackendParity:
    """The determinism contract holds on the process backend too.

    The shard-parity matrix in tests/test_api.py exercises the default
    thread backend; these run the same submit-equals-run claim — and the
    cross-backend identity — through real process pools, where functions,
    items and measurements all cross a pickle boundary.
    """

    PARAMS = {
        "task_names": ["entailment", "sentiment"],
        "n_splits": 2,
        "dataset_size": 150,
    }

    @staticmethod
    def _canon(result):
        return json.dumps(result.to_rows(), sort_keys=True, default=str)

    def test_submit_equals_run_bitwise_on_process_backend(self):
        from repro.api import Session, StudySpec

        spec = StudySpec(
            study="binomial",
            params=self.PARAMS,
            n_jobs=2,
            backend="process",
            random_state=5,
        )
        with Session(backend="process") as session:
            full = session.run(spec)
            handle = session.submit(spec)
            assert len(handle) == 2
            merged = handle.result()
        assert self._canon(full) == self._canon(merged)
        # Cross-backend identity: the process-pool result is bitwise the
        # serial result (seeds are pre-drawn; pickling changes nothing).
        with Session() as session:
            serial = session.run(spec.replace(backend="serial", n_jobs=1))
        assert self._canon(serial) == self._canon(full)

    def test_process_study_replays_from_shared_store(self, tmp_path):
        from repro.api import Session, StudySpec

        spec = StudySpec(
            study="binomial",
            params=self.PARAMS,
            n_jobs=2,
            backend="process",
            random_state=5,
        )
        directory = str(tmp_path / "store")
        with Session(backend="process", cache_dir=directory) as session:
            cold = session.run(spec)
        assert cold.cache_stats["misses"] > 0
        with Session(backend="process", cache_dir=directory) as fresh:
            warm = fresh.run(spec)
        assert warm.cache_stats["misses"] == 0
        assert self._canon(cold) == self._canon(warm)


class TestCancellation:
    def test_map_raises_when_already_cancelled(self):
        event = threading.Event()
        event.set()
        with pytest.raises(StudyCancelled):
            ParallelExecutor(1).map(_square, [1, 2], cancel=event)

    def test_serial_map_stops_between_items(self):
        event = threading.Event()
        seen = []

        def fn(x):
            seen.append(x)
            event.set()  # cancel after the first item
            return x

        with pytest.raises(StudyCancelled):
            ParallelExecutor(1).map(fn, [1, 2, 3], cancel=event)
        assert seen == [1]

    def test_thread_map_checks_per_item(self):
        event = threading.Event()
        event.set()
        with pytest.raises(StudyCancelled):
            ParallelExecutor(2, backend="thread").map(
                _square, [1, 2, 3, 4], cancel=event
            )

    def test_map_without_event_unchanged(self):
        assert ParallelExecutor(1).map(_square, [2, 3]) == [4, 9]

    def test_cancellable_executor_delegates_and_binds_event(self):
        event = threading.Event()
        executor = CancellableExecutor(ParallelExecutor(2), event)
        assert executor.n_jobs == 2
        assert executor.backend == "thread"
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        event.set()
        with pytest.raises(StudyCancelled):
            executor.map(_square, [1])

    def test_runner_batches_respect_cancel(
        self, classification_process, seed_bundle
    ):
        event = threading.Event()
        runner = StudyRunner(
            classification_process,
            executor=CancellableExecutor(ParallelExecutor(1), event),
        )
        assert len(runner.run([WorkItem(seeds=seed_bundle)])) == 1
        event.set()
        other = SeedBundle(base_seed=99)
        with pytest.raises(StudyCancelled):
            runner.run([WorkItem(seeds=other)])

    def test_process_map_raises_when_already_cancelled(self):
        event = threading.Event()
        event.set()
        with pytest.raises(StudyCancelled):
            ParallelExecutor(2, backend="process").map(
                _square, [1, 2, 3, 4], cancel=event
            )

    def test_process_map_stops_between_batches(self):
        # An event set between batches stops the next batch before any
        # worker spins up.
        event = threading.Event()
        executor = CancellableExecutor(
            ParallelExecutor(2, backend="process"), event
        )
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        event.set()
        with pytest.raises(StudyCancelled):
            executor.map(_square, [4, 5, 6])

    def test_process_map_stops_between_items_inside_a_batch(self, tmp_path):
        # The threading event cannot cross process pickling, so a relay
        # mirrors it into a multiprocessing event checked before every
        # item *inside* pool workers: a cancellation mid-batch stops the
        # remaining items of that batch, not just the next batch.
        event = threading.Event()
        watcher_error = []

        def set_after_first_marker():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(tmp_path.iterdir()):
                    event.set()
                    return
                time.sleep(0.002)
            watcher_error.append("no marker appeared")  # pragma: no cover

        watcher = threading.Thread(target=set_after_first_marker)
        watcher.start()
        items = [(str(tmp_path), index) for index in range(24)]
        try:
            with pytest.raises(StudyCancelled):
                ParallelExecutor(2, backend="process").map(
                    _mark_and_sleep, items, cancel=event
                )
        finally:
            watcher.join()
        assert not watcher_error
        # Some items ran before the cancel landed, but nowhere near all:
        # the batch was truncated between items, not drained.
        ran = len(list(tmp_path.iterdir()))
        assert 1 <= ran < 24

    def test_process_single_item_batch_checks_per_item(self):
        # One item falls back to the serial path, which checks the event
        # between items even on a process-configured executor.
        event = threading.Event()

        def fn(x):
            event.set()
            return x

        executor = ParallelExecutor(2, backend="process")
        assert executor.map(fn, [7], cancel=event) == [7]
        with pytest.raises(StudyCancelled):
            executor.map(fn, [8], cancel=event)

    def test_submit_cancel_with_process_backend_drains(self):
        from repro.api import Session, StudySpec

        spec = StudySpec(
            study="binomial",
            params={
                "task_names": ["entailment", "sentiment"],
                "n_splits": 2,
                "dataset_size": 150,
            },
            backend="process",
            n_jobs=2,
            random_state=0,
        )
        with Session(backend="process", max_concurrent_studies=1) as session:
            handle = session.submit(spec)
            handle.cancel()
            assert handle.cancelled()
            # Process batches stop at their boundaries; draining the
            # handle must never hang and never yield a truncated shard.
            for partial in handle.partial_results():
                assert partial.to_rows()
            assert handle.done()


class TestWorkItemScope:
    def test_from_scope_derives_bundle_and_path(self):
        scope = SeedScope.from_state(0).child("task", "t").child("rep", 1)
        item = WorkItem.from_scope(scope, with_hpo=True)
        assert item.seeds == scope.bundle()
        assert item.with_hpo
        assert item.scope_path == "task=t/rep=1"

    def test_scope_path_does_not_enter_measurement_key(
        self, classification_process, seed_bundle
    ):
        plain = measurement_key(classification_process, seed_bundle, None)
        # Same seeds under any provenance label must share the cache entry.
        assert plain == measurement_key(classification_process, seed_bundle, None)


class TestStudyRunnerEquivalence:
    """Parallel execution must be bitwise identical to the serial path."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_variance_study_parallel_equals_serial(self, hard_process, backend):
        kwargs = dict(
            sources=(VarianceSource.DATA, VarianceSource.INIT),
            n_seeds=4,
        )
        serial = variance_decomposition_study(hard_process, random_state=3, **kwargs)
        runner = StudyRunner(hard_process, n_jobs=3, backend=backend)
        parallel = variance_decomposition_study(
            hard_process, random_state=3, runner=runner, **kwargs
        )
        assert set(serial.scores) == set(parallel.scores)
        for source in serial.scores:
            np.testing.assert_array_equal(serial.scores[source], parallel.scores[source])

    def test_variance_study_cached_rerun_hits(self, hard_process):
        cache = MeasurementCache()
        runner = StudyRunner(hard_process, cache=cache)
        kwargs = dict(sources=(VarianceSource.DATA,), n_seeds=3, random_state=9)
        first = variance_decomposition_study(hard_process, runner=runner, **kwargs)
        second = variance_decomposition_study(hard_process, runner=runner, **kwargs)
        # Same random_state -> same pre-drawn seeds -> full cache replay.
        assert cache.misses == 6 and cache.hits == 6
        for source in first.scores:
            np.testing.assert_array_equal(first.scores[source], second.scores[source])

    def test_hpo_study_parallel_equals_serial(self, hard_process):
        algorithms = {"random_search": RandomSearch()}
        serial = hpo_variance_study(
            hard_process, algorithms, n_repetitions=3, random_state=11
        )
        parallel = hpo_variance_study(
            hard_process, algorithms, n_repetitions=3, random_state=11, n_jobs=2
        )
        np.testing.assert_array_equal(
            serial["random_search"], parallel["random_search"]
        )

    def test_stateful_hpo_algorithm_safe_under_thread_parallelism(self, hard_process):
        # NoisyGridSearch keeps per-run state (its grid is rebuilt in
        # prepare()); concurrent with_hpo items must each get their own
        # optimizer copy, or repetitions would race on the shared grid.
        algorithms = {"noisy_grid": NoisyGridSearch()}
        serial = hpo_variance_study(
            hard_process, algorithms, n_repetitions=4, random_state=13
        )
        parallel = hpo_variance_study(
            hard_process, algorithms, n_repetitions=4, random_state=13, n_jobs=4
        )
        np.testing.assert_array_equal(serial["noisy_grid"], parallel["noisy_grid"])

    def test_runner_bound_to_other_process_rejected(
        self, hard_process, classification_process
    ):
        runner = StudyRunner(classification_process)
        with pytest.raises(ValueError, match="different BenchmarkProcess"):
            variance_decomposition_study(hard_process, n_seeds=2, runner=runner)
        with pytest.raises(ValueError, match="different BenchmarkProcess"):
            IdealEstimator().estimate(hard_process, 2, runner=runner)

    def test_fix_hpo_estimator_parallel_equals_serial(self, hard_process):
        serial = FixHOptEstimator(randomize="all").estimate(
            hard_process, 5, random_state=2
        )
        runner = StudyRunner(hard_process, n_jobs=2)
        parallel = FixHOptEstimator(randomize="all").estimate(
            hard_process, 5, random_state=2, runner=runner
        )
        np.testing.assert_array_equal(serial.scores, parallel.scores)
        assert serial.n_fits == parallel.n_fits

    def test_ideal_estimator_parallel_equals_serial(self, hard_process):
        serial = IdealEstimator().estimate(hard_process, 3, random_state=5)
        runner = StudyRunner(hard_process, n_jobs=2)
        parallel = IdealEstimator().estimate(
            hard_process, 3, random_state=5, runner=runner
        )
        np.testing.assert_array_equal(serial.scores, parallel.scores)
        assert serial.n_fits == parallel.n_fits

    def test_generic_map_passthrough(self, hard_process):
        runner = StudyRunner(hard_process, n_jobs=2)
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]
