"""Tests for the BenchmarkProcess."""

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkProcess
from repro.hpo.grid import NoisyGridSearch
from repro.utils.rng import SeedBundle


class TestSplit:
    def test_split_driven_by_data_seed(self, classification_process, rng):
        bundle = SeedBundle.random(rng)
        test_a = classification_process.split(bundle)[2]
        test_b = classification_process.split(bundle)[2]
        np.testing.assert_array_equal(test_a.X, test_b.X)

    def test_different_data_seed_changes_split(self, classification_process, rng):
        bundle = SeedBundle.random(rng)
        other = bundle.randomized(["data"], rng)
        test_a = classification_process.split(bundle)[2]
        test_b = classification_process.split(other)[2]
        assert test_a.n_samples != test_b.n_samples or not np.array_equal(test_a.X, test_b.X)


class TestMeasure:
    def test_measurement_fields(self, classification_process, seed_bundle):
        measurement = classification_process.measure(seed_bundle)
        assert 0.0 <= measurement.test_score <= 1.0
        assert measurement.n_fits == 1
        assert measurement.hparams

    def test_reproducible_given_seeds(self, classification_process, seed_bundle):
        a = classification_process.measure(seed_bundle).test_score
        b = classification_process.measure(seed_bundle).test_score
        assert a == b

    def test_explicit_hparams_used(self, classification_process, seed_bundle):
        measurement = classification_process.measure(
            seed_bundle, {"learning_rate": 0.011}
        )
        assert measurement.hparams["learning_rate"] == pytest.approx(0.011)


class TestRunHpo:
    def test_budget_respected(self, classification_process, seed_bundle):
        result = classification_process.run_hpo(seed_bundle, budget=4)
        assert result.n_trials == 4

    def test_hopt_seed_controls_outcome(self, classification_process, rng):
        bundle = SeedBundle.random(rng)
        a = classification_process.run_hpo(bundle)
        b = classification_process.run_hpo(bundle)
        assert a.best_config == b.best_config
        c = classification_process.run_hpo(bundle.randomized(["hopt"], rng))
        assert c.best_config != a.best_config

    def test_alternative_algorithm(self, blobs_dataset, fast_classifier, seed_bundle):
        process = BenchmarkProcess(
            blobs_dataset, fast_classifier, hpo_algorithm=NoisyGridSearch(), hpo_budget=4
        )
        result = process.run_hpo(seed_bundle)
        assert result.n_trials == 4

    def test_objective_is_validation_error(self, classification_process, seed_bundle):
        result = classification_process.run_hpo(seed_bundle, budget=3)
        assert all(0.0 <= t.value <= 1.0 for t in result.trials)


class TestMeasureWithHpo:
    def test_cost_accounting(self, classification_process, seed_bundle):
        measurement = classification_process.measure_with_hpo(seed_bundle)
        assert measurement.n_fits == classification_process.hpo_budget + 1

    def test_selected_hparams_within_search_space(self, classification_process, seed_bundle):
        measurement = classification_process.measure_with_hpo(seed_bundle)
        space = classification_process.pipeline.search_space()
        for name in space.names:
            assert name in measurement.hparams

    def test_invalid_budget_rejected(self, blobs_dataset, fast_classifier):
        with pytest.raises(ValueError):
            BenchmarkProcess(blobs_dataset, fast_classifier, hpo_budget=0)
