"""Counterfactual noise-layer toggles and the layer_ablation study.

The load-bearing contract: a layer-off pipeline consumes *exactly* the
same seed streams for every remaining layer as the layer-on pipeline, so
a toggled measurement under a shared bundle is a true counterfactual.
These tests pin that bitwise: an off layer's seed is inert, an on layer's
seed is live, and the ablation grid's repetition bundles are identical
across combinations (witnessed through the measurement cache).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benchmark import BenchmarkProcess
from repro.core.variance import layer_variance_budget
from repro.data.synthetic import make_nonlinear_classification
from repro.data.tasks import get_task
from repro.engine import MeasurementCache
from repro.experiments import run_layer_ablation_study
from repro.pipelines.base import Pipeline
from repro.pipelines.layers import (
    NOISE_LAYERS,
    combo_label,
    full_grid_combos,
    normalize_layers,
    one_at_a_time_combos,
    parse_combo,
)
from repro.pipelines.mlp import MLPClassifierPipeline
from repro.utils.rng import SeedScope


def _small_pipeline(**overrides):
    kwargs = dict(
        hidden_sizes=(8,),
        n_epochs=3,
        batch_size=32,
        dropout_rate=0.2,
        name="abl-probe",
    )
    kwargs.update(overrides)
    return MLPClassifierPipeline(**kwargs)


@pytest.fixture
def train():
    return make_nonlinear_classification(n_samples=120, n_features=6, random_state=0)


def _fit_weights(pipeline, train, seeds):
    outcome = pipeline.fit(train, {}, seeds)
    return [w.copy() for w in outcome.model.weights]


def _weights_equal(a, b) -> bool:
    return all(np.array_equal(wa, wb) for wa, wb in zip(a, b))


# ----------------------------------------------------------------------
# Label grammar
# ----------------------------------------------------------------------
class TestComboLabels:
    def test_canonical_labels(self):
        assert combo_label(()) == "none"
        assert combo_label(NOISE_LAYERS) == "all"
        assert combo_label(("order", "dropout")) == "dropout+order"

    def test_parse_inverts_label(self):
        assert parse_combo("none") == ()
        assert parse_combo("all") == NOISE_LAYERS
        assert parse_combo("dropout+order") == ("dropout", "order")

    def test_unknown_layers_rejected(self):
        with pytest.raises(ValueError, match="unknown noise layers"):
            normalize_layers(("dropout", "cosmic-rays"))
        with pytest.raises(ValueError, match="unknown noise layers"):
            parse_combo("dropout+cosmic-rays")

    def test_one_at_a_time_grid(self):
        assert one_at_a_time_combos() == [
            "none",
            "augment",
            "dropout",
            "init",
            "order",
            "all",
        ]

    def test_full_grid_size_and_ends(self):
        grid = full_grid_combos()
        assert len(grid) == 2 ** len(NOISE_LAYERS)
        assert grid[0] == "none" and grid[-1] == "all"
        assert len(set(grid)) == len(grid)

    @given(
        st.sets(st.sampled_from(NOISE_LAYERS)).map(
            lambda s: tuple(layer for layer in NOISE_LAYERS if layer in s)
        )
    )
    @settings(max_examples=32, deadline=None)
    def test_label_roundtrip_for_every_subset(self, subset):
        assert parse_combo(combo_label(subset)) == subset

    @given(st.lists(st.sampled_from(NOISE_LAYERS), min_size=1, max_size=8))
    @settings(max_examples=32, deadline=None)
    def test_normalize_is_order_and_duplicate_invariant(self, layers):
        assert normalize_layers(layers) == normalize_layers(reversed(list(layers)))
        assert normalize_layers(layers) == normalize_layers(set(layers))


# ----------------------------------------------------------------------
# Pipeline toggles
# ----------------------------------------------------------------------
class TestWithNoiseLayers:
    def test_clone_names_are_distinct_per_combo(self):
        """The measurement cache keys pipelines by name: every toggle
        variant must own a distinct name or ablated measurements would
        collide on one cache entry."""
        pipeline = _small_pipeline()
        names = {
            pipeline.with_noise_layers(parse_combo(combo)).name
            for combo in full_grid_combos()
        }
        assert len(names) == 2 ** len(NOISE_LAYERS)

    def test_all_on_clone_keeps_base_name(self):
        pipeline = _small_pipeline()
        assert pipeline.with_noise_layers(NOISE_LAYERS).name == pipeline.name

    def test_reablation_recomputes_from_base_name(self):
        pipeline = _small_pipeline()
        once = pipeline.with_noise_layers(("dropout",))
        twice = once.with_noise_layers(("order",))
        assert twice.name == "abl-probe[layers=order]"
        assert "[layers=" not in twice.name.replace("[layers=order]", "")

    def test_clone_does_not_mutate_original(self):
        pipeline = _small_pipeline()
        pipeline.with_noise_layers(())
        assert pipeline.noise_layers == NOISE_LAYERS
        assert pipeline.name == "abl-probe"

    def test_base_pipeline_refuses_toggles(self):
        class Bare(Pipeline):
            def default_hparams(self):
                return {}

            def search_space(self):
                return None

            def fit(self, train, hparams, seeds, valid=None):
                raise NotImplementedError

            def evaluate(self, model, dataset):
                raise NotImplementedError

        with pytest.raises(NotImplementedError, match="noise-layer toggles"):
            Bare().with_noise_layers(("dropout",))

    def test_constructor_accepts_noise_layers(self):
        pipeline = _small_pipeline(noise_layers=("init", "order"))
        assert pipeline.noise_layers == ("init", "order")
        assert pipeline.name == "abl-probe[layers=init+order]"


class TestCounterfactualContract:
    """Toggling a layer never changes the seeds consumed by other layers."""

    @pytest.mark.parametrize("layer", NOISE_LAYERS)
    def test_off_layer_seed_is_inert_bitwise(self, train, layer):
        pipeline = _small_pipeline(
            augmentations=_augmentations(), numerical_noise_scale=0.0
        )
        off = pipeline.with_noise_layers(
            tuple(l for l in NOISE_LAYERS if l != layer)
        )
        base = SeedScope.from_state(17).bundle()
        other = base.with_seeds(**{layer: SeedScope.from_state(99).seed()})
        assert _weights_equal(
            _fit_weights(off, train, base), _fit_weights(off, train, other)
        )

    @pytest.mark.parametrize("layer", NOISE_LAYERS)
    def test_on_layer_seed_is_live_bitwise(self, train, layer):
        pipeline = _small_pipeline(
            augmentations=_augmentations(), numerical_noise_scale=0.0
        )
        base = SeedScope.from_state(17).bundle()
        other = base.with_seeds(**{layer: SeedScope.from_state(99).seed()})
        assert not _weights_equal(
            _fit_weights(pipeline, train, base), _fit_weights(pipeline, train, other)
        )

    def test_augment_off_equals_native_no_augmentations(self, train):
        pipeline = _small_pipeline(augmentations=_augmentations())
        off = pipeline.with_noise_layers(
            tuple(l for l in NOISE_LAYERS if l != "augment")
        )
        native = _small_pipeline(augmentations=())
        seeds = SeedScope.from_state(5).bundle()
        assert _weights_equal(
            _fit_weights(off, train, seeds), _fit_weights(native, train, seeds)
        )

    def test_dropout_off_equals_native_zero_dropout(self, train):
        pipeline = _small_pipeline()
        off = pipeline.with_noise_layers(
            tuple(l for l in NOISE_LAYERS if l != "dropout")
        )
        seeds = SeedScope.from_state(5).bundle()
        assert _weights_equal(
            _fit_weights(off, train, seeds),
            [
                w.copy()
                for w in pipeline.fit(
                    train, {"dropout_rate": 0.0}, seeds
                ).model.weights
            ],
        )

    def test_init_off_is_deterministic_across_bundles(self, train):
        pipeline = _small_pipeline().with_noise_layers(())
        hp = pipeline.resolve_hparams({})
        net_a = pipeline._build_network(
            train, hp, SeedScope.from_state(1).bundle()
        )
        net_b = pipeline._build_network(
            train, hp, SeedScope.from_state(2).bundle()
        )
        assert _weights_equal(net_a.weights, net_b.weights)

    def test_toggles_flow_through_vectorized_fit_many(self, train):
        pipeline = _small_pipeline(augmentations=_augmentations())
        off = pipeline.with_noise_layers(("init", "order"))
        bundles = [
            SeedScope.from_state(0).child("rep", i).bundle() for i in range(3)
        ]
        serial = [off.fit(train, {}, seeds) for seeds in bundles]
        stacked = off.fit_many([train] * 3, off.resolve_hparams({}), bundles)
        for one, many in zip(serial, stacked):
            assert _weights_equal(one.model.weights, many.model.weights)


def _augmentations():
    from repro.data.augmentation import GaussianJitter

    return (GaussianJitter(0.05),)


# ----------------------------------------------------------------------
# The layer_ablation study
# ----------------------------------------------------------------------
class TestLayerAblationStudy:
    def test_all_off_variance_is_exactly_zero(self):
        result = run_layer_ablation_study(
            ["entailment"],
            combos=["none"],
            n_seeds=3,
            dataset_size=150,
            random_state=11,
        )
        (row,) = result.rows()
        assert row["combo"] == "none"
        assert row["variance"] == 0.0
        assert row["std"] == 0.0
        scores = result.scores[("none", "entailment")]
        assert np.ptp(scores) == 0.0

    def test_rep_bundles_are_combo_independent(self, tmp_path):
        """The 'all' measurements of a one-combo run replay bitwise from
        cache in a different-combo run: the repetition bundles are a pure
        function of (task, layer, rep), never of the combo list."""
        cache = MeasurementCache()
        run_layer_ablation_study(
            ["entailment"],
            combos=["all"],
            n_seeds=3,
            dataset_size=150,
            cache=cache,
            random_state=11,
        )
        misses_before = cache.misses
        run_layer_ablation_study(
            ["entailment"],
            combos=["none", "all"],
            n_seeds=3,
            dataset_size=150,
            cache=cache,
            random_state=11,
        )
        # The 'all' cell replayed entirely; only 'none' ran new fits.
        assert cache.hits >= 3
        assert cache.misses - misses_before == 3

    def test_rows_report_and_budgets(self):
        result = run_layer_ablation_study(
            ["entailment"],
            combos=["none", "dropout", "order", "all"],
            n_seeds=3,
            dataset_size=150,
            random_state=11,
        )
        rows = result.rows()
        assert [row["combo"] for row in rows] == ["none", "dropout", "order", "all"]
        assert all(row["task"] == "entailment" for row in rows)
        budget = result.budgets()["entailment"]
        fractions = budget.fractions()
        assert set(fractions) == {"dropout", "order"}
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        assert sum(fractions.values()) + budget.residual() == pytest.approx(1.0)
        assert "Layer ablation" in result.report()

    def test_invalid_combo_fails_before_any_work(self):
        with pytest.raises(ValueError, match="outside the studied set"):
            run_layer_ablation_study(
                ["entailment"],
                layers=("dropout", "order"),
                combos=["init"],
                n_seeds=2,
                dataset_size=150,
                random_state=0,
            )

    def test_restricted_layers_all_means_studied_set(self):
        result = run_layer_ablation_study(
            ["entailment"],
            layers=("dropout", "order"),
            combos=["all"],
            n_seeds=2,
            dataset_size=150,
            random_state=0,
        )
        (row,) = result.rows()
        assert row["layers_on"] == ["dropout", "order"]


# ----------------------------------------------------------------------
# Budget math (hypothesis)
# ----------------------------------------------------------------------
_VARIANCES = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestLayerVarianceBudget:
    @given(
        total=_VARIANCES,
        components=st.dictionaries(
            st.sampled_from(NOISE_LAYERS), _VARIANCES, min_size=1
        ),
        floor=_VARIANCES,
    )
    @settings(max_examples=200, deadline=None)
    def test_fractions_bounded_and_close_with_residual(
        self, total, components, floor
    ):
        budget = layer_variance_budget(total, components, floor_variance=floor)
        fractions = budget.fractions()
        assert set(fractions) == set(components)
        for value in fractions.values():
            assert 0.0 <= value <= 1.0
        assert sum(fractions.values()) + budget.residual() == pytest.approx(
            1.0, abs=1e-9
        )

    def test_degenerate_total_pushes_mass_to_residual(self):
        budget = layer_variance_budget(0.0, {"dropout": 0.0, "order": 0.0})
        assert budget.fractions() == {"dropout": 0.0, "order": 0.0}
        assert budget.residual() == 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            layer_variance_budget(-1.0, {"dropout": 0.1})
        with pytest.raises(ValueError, match="non-negative"):
            layer_variance_budget(1.0, {"dropout": -0.1})

    def test_as_rows_closes_the_budget(self):
        budget = layer_variance_budget(
            0.01, {"dropout": 0.002, "order": 0.003}, floor_variance=0.0001
        )
        rows = budget.as_rows()
        assert rows[-1]["component"] == "residual (interactions)"
        assert sum(row["fraction"] for row in rows) == pytest.approx(1.0)
