"""Tests for the hyperparameter search-space abstractions."""

import numpy as np
import pytest

from repro.hpo.space import (
    CategoricalDimension,
    LinearDimension,
    LogUniformDimension,
    SearchSpace,
    UniformDimension,
)


class TestUniformDimension:
    def test_sample_within_bounds(self, rng):
        dim = UniformDimension(0.2, 0.8)
        samples = [dim.sample(rng) for _ in range(100)]
        assert all(0.2 <= s <= 0.8 for s in samples)

    def test_grid_endpoints(self):
        grid = UniformDimension(0.0, 1.0).grid(5)
        assert grid[0] == 0.0 and grid[-1] == 1.0 and len(grid) == 5

    def test_unit_roundtrip(self):
        dim = UniformDimension(-2.0, 6.0)
        assert dim.from_unit(dim.to_unit(3.0)) == pytest.approx(3.0)

    def test_shifted(self):
        dim = UniformDimension(0.0, 1.0).shifted(0.5)
        assert (dim.low, dim.high) == (0.5, 1.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformDimension(1.0, 1.0)

    def test_linear_alias(self):
        assert LinearDimension is UniformDimension


class TestLogUniformDimension:
    def test_sample_within_bounds(self, rng):
        dim = LogUniformDimension(1e-4, 1e-1)
        samples = [dim.sample(rng) for _ in range(200)]
        assert all(1e-4 <= s <= 1e-1 for s in samples)

    def test_samples_spread_across_decades(self, rng):
        dim = LogUniformDimension(1e-4, 1e-1)
        samples = np.array([dim.sample(rng) for _ in range(2000)])
        # Roughly a third of samples should fall in each decade.
        fraction_low = np.mean(samples < 1e-3)
        assert 0.2 < fraction_low < 0.45

    def test_grid_is_geometric(self):
        grid = LogUniformDimension(1e-3, 1e-1).grid(3)
        assert grid[1] == pytest.approx(1e-2)

    def test_unit_roundtrip(self):
        dim = LogUniformDimension(1e-5, 1e-1)
        assert dim.from_unit(dim.to_unit(1e-3)) == pytest.approx(1e-3)

    def test_requires_positive_bounds(self):
        with pytest.raises(ValueError):
            LogUniformDimension(0.0, 1.0)


class TestCategoricalDimension:
    def test_sample_from_choices(self, rng):
        dim = CategoricalDimension(["a", "b", "c"])
        assert dim.sample(rng) in {"a", "b", "c"}

    def test_grid_is_all_choices(self):
        assert CategoricalDimension([1, 2]).grid(10) == [1, 2]

    def test_unit_roundtrip(self):
        dim = CategoricalDimension(["x", "y", "z"])
        assert dim.from_unit(dim.to_unit("y")) == "y"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDimension([])


class TestSearchSpace:
    def _space(self):
        return SearchSpace(
            {
                "lr": LogUniformDimension(1e-4, 1e-1),
                "momentum": UniformDimension(0.5, 0.99),
            }
        )

    def test_sample_has_all_names(self, rng):
        config = self._space().sample(rng)
        assert set(config) == {"lr", "momentum"}

    def test_grid_size(self):
        assert len(self._space().grid(3)) == 9

    def test_unit_roundtrip(self):
        space = self._space()
        config = {"lr": 1e-2, "momentum": 0.7}
        recovered = space.from_unit(space.to_unit(config))
        assert recovered["lr"] == pytest.approx(1e-2)
        assert recovered["momentum"] == pytest.approx(0.7)

    def test_from_unit_wrong_shape(self):
        with pytest.raises(ValueError):
            self._space().from_unit(np.array([0.5]))

    def test_perturbed_keeps_names_and_stays_valid(self, rng):
        space = self._space()
        perturbed = space.perturbed(rng, relative_scale=0.1)
        assert perturbed.names == space.names
        assert perturbed.dimensions["lr"].low > 0

    def test_perturbed_in_expectation_matches_original(self):
        # Averaged over many perturbations, the bounds should stay centered
        # on the nominal ones (the noisy-grid property of Appendix E.2).
        space = SearchSpace({"x": UniformDimension(0.0, 1.0)})
        rng = np.random.default_rng(0)
        lows = [space.perturbed(rng, 0.25).dimensions["x"].low for _ in range(500)]
        assert abs(np.mean(lows)) < 0.02

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})
