"""Tests for multi-dataset comparisons and multiple-comparison corrections."""

import numpy as np
import pytest

from repro.core.multidataset import (
    MultiDatasetComparison,
    bonferroni_correction,
    corrected_gamma,
    friedman_test,
    holm_correction,
    replicability_analysis,
    wilcoxon_signed_rank,
)


class TestWilcoxonSignedRank:
    def test_detects_consistent_improvement(self, rng):
        b = rng.normal(0.7, 0.02, size=12)
        a = b + 0.03
        assert wilcoxon_signed_rank(a, b).significant()

    def test_no_difference_not_significant(self, rng):
        scores = rng.normal(0.7, 0.02, size=12)
        result = wilcoxon_signed_rank(scores, scores.copy())
        assert result.pvalue == 1.0

    def test_low_power_with_few_datasets(self, rng):
        # With only 4 datasets, even a real improvement cannot reach p<0.05
        # (the smallest possible one-sided p-value is 1/16) — the limitation
        # the paper points out for Demšar's recommendation.
        b = rng.normal(0.7, 0.02, size=4)
        a = b + 0.05
        assert wilcoxon_signed_rank(a, b).pvalue > 0.05

    def test_requires_pairing(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank(np.ones(3), np.ones(4))


class TestFriedmanTest:
    def test_detects_ranking_difference(self, rng):
        base = rng.normal(0.7, 0.01, size=(10, 1))
        scores = np.hstack([base, base + 0.05, base - 0.05])
        result = friedman_test(scores)
        assert result.significant()
        assert result.effect > 1.0

    def test_identical_algorithms_not_significant(self, rng):
        scores = rng.normal(0.7, 0.01, size=(10, 3))
        assert not friedman_test(scores).significant()

    def test_requires_three_algorithms(self, rng):
        with pytest.raises(ValueError):
            friedman_test(rng.normal(size=(5, 2)))


class TestCorrections:
    def test_bonferroni_threshold(self):
        assert bonferroni_correction([0.01, 0.04], alpha=0.05) == [True, False]

    def test_holm_at_least_as_powerful_as_bonferroni(self):
        pvalues = [0.01, 0.02, 0.03, 0.2]
        bonf = bonferroni_correction(pvalues)
        holm = holm_correction(pvalues)
        assert all(h or not b for b, h in zip(bonf, holm))
        assert sum(holm) >= sum(bonf)

    def test_holm_stops_at_first_failure(self):
        assert holm_correction([0.001, 0.5, 0.0001]) == [True, False, True]

    def test_empty_inputs(self):
        assert bonferroni_correction([]) == []
        assert holm_correction([]) == []


class TestCorrectedGamma:
    def test_single_comparison_unchanged(self):
        assert corrected_gamma(0.75, 1) == 0.75

    def test_increases_with_comparisons(self):
        g2 = corrected_gamma(0.75, 2)
        g10 = corrected_gamma(0.75, 10)
        assert 0.75 < g2 < g10 < 1.0

    def test_capped_below_one(self):
        assert corrected_gamma(0.95, 1000) < 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            corrected_gamma(0.75, 0)
        with pytest.raises(ValueError):
            corrected_gamma(1.5, 2)


class TestReplicabilityAnalysis:
    def _scores(self, rng, improvements):
        scores_a, scores_b = {}, {}
        for i, delta in enumerate(improvements):
            base = rng.normal(0.7, 0.02, size=30)
            scores_b[f"dataset-{i}"] = base
            scores_a[f"dataset-{i}"] = base + delta + rng.normal(0, 0.005, size=30)
        return scores_a, scores_b

    def test_improvement_on_all_datasets(self, rng):
        scores_a, scores_b = self._scores(rng, [0.05, 0.06, 0.04])
        result = replicability_analysis(scores_a, scores_b, random_state=0)
        assert result.n_datasets == 3
        assert result.all_datasets_improve()
        assert result.replicability_count == 3

    def test_no_improvement_anywhere(self, rng):
        scores_a, scores_b = self._scores(rng, [0.0, 0.0, 0.0])
        result = replicability_analysis(scores_a, scores_b, random_state=0)
        assert result.replicability_count <= 1
        assert not result.all_datasets_improve()

    def test_mixed_improvements(self, rng):
        # A clear improvement on two datasets and a clear regression on the
        # third: the "improvement on all datasets" rule must reject.
        scores_a, scores_b = self._scores(rng, [0.08, -0.05, 0.07])
        result = replicability_analysis(scores_a, scores_b, random_state=0)
        assert not result.all_datasets_improve()
        assert result.replicability_count == 2

    def test_bonferroni_option(self, rng):
        scores_a, scores_b = self._scores(rng, [0.08, 0.07])
        result = replicability_analysis(
            scores_a, scores_b, correction="bonferroni", random_state=0
        )
        assert result.correction == "bonferroni"
        assert result.replicability_count == 2

    def test_wilcoxon_reported(self, rng):
        scores_a, scores_b = self._scores(rng, [0.05, 0.05, 0.05, 0.05])
        result = replicability_analysis(scores_a, scores_b, random_state=0)
        assert result.wilcoxon is not None
        assert result.wilcoxon.effect > 0

    def test_mismatched_datasets_rejected(self, rng):
        with pytest.raises(ValueError):
            replicability_analysis({"a": np.ones(5)}, {"b": np.ones(5)})

    def test_unknown_correction_rejected(self, rng):
        with pytest.raises(ValueError):
            replicability_analysis(
                {"a": np.ones(5)}, {"a": np.ones(5)}, correction="fdr"
            )
