"""Tests for the variance-source taxonomy."""

import pytest

from repro.core.sources import (
    ALL_SOURCES,
    HOPT_SOURCES,
    LEARNING_SOURCES,
    VarianceSource,
    sources_for_subset,
)


class TestTaxonomy:
    def test_all_is_union(self):
        assert set(ALL_SOURCES) == set(LEARNING_SOURCES) | set(HOPT_SOURCES)

    def test_hopt_not_in_learning_sources(self):
        assert VarianceSource.HOPT not in LEARNING_SOURCES

    def test_paper_sources_present(self):
        values = {s.value for s in ALL_SOURCES}
        assert {"data", "augment", "order", "init", "dropout", "numerical", "hopt"} == values

    def test_str(self):
        assert str(VarianceSource.DATA) == "data"


class TestSourcesForSubset:
    def test_init_subset(self):
        assert sources_for_subset("init") == frozenset({VarianceSource.INIT})

    def test_data_subset(self):
        assert sources_for_subset("data") == frozenset({VarianceSource.DATA})

    def test_all_subset_excludes_hopt(self):
        subset = sources_for_subset("all")
        assert VarianceSource.HOPT not in subset
        assert subset == frozenset(LEARNING_SOURCES)

    def test_case_insensitive(self):
        assert sources_for_subset("Init") == sources_for_subset("init")

    def test_explicit_iterable(self):
        subset = sources_for_subset(["init", "order"])
        assert subset == frozenset({VarianceSource.INIT, VarianceSource.ORDER})

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            sources_for_subset("everything")
