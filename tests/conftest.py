"""Shared fixtures: small datasets, pipelines and benchmark processes.

Everything here is intentionally tiny so the full suite runs in seconds;
scaling up is exercised by the benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkProcess
from repro.data.synthetic import (
    make_gaussian_blobs,
    make_nonlinear_classification,
    make_peptide_binding,
)
from repro.pipelines.linear import LogisticRegressionPipeline
from repro.pipelines.mlp import MLPClassifierPipeline, MLPRegressorPipeline
from repro.utils.rng import SeedBundle


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: multi-process or whole-suite test (kept in the tier-1 run; "
        "deselect with -m 'not slow' for a fast inner loop)",
    )


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def seed_bundle(rng):
    """A fully randomized seed bundle."""
    return SeedBundle.random(rng)


@pytest.fixture
def blobs_dataset():
    """Small, easy multi-class classification dataset."""
    return make_gaussian_blobs(
        n_samples=200, n_features=6, n_classes=3, class_separation=3.0, random_state=0
    )


@pytest.fixture
def hard_dataset():
    """Small binary dataset with a nonlinear boundary."""
    return make_nonlinear_classification(n_samples=200, n_features=6, random_state=0)


@pytest.fixture
def regression_dataset():
    """Small peptide-binding-style regression dataset."""
    return make_peptide_binding(n_samples=150, peptide_length=4, allele_length=2, random_state=0)


@pytest.fixture
def fast_classifier():
    """A very small MLP classifier pipeline."""
    return MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=3, batch_size=32)


@pytest.fixture
def fast_regressor():
    """A very small MLP regressor pipeline."""
    return MLPRegressorPipeline(hidden_sizes=(8,), n_epochs=3, batch_size=32)


@pytest.fixture
def linear_classifier():
    """A logistic-regression baseline pipeline."""
    return LogisticRegressionPipeline(n_epochs=3, batch_size=32)


@pytest.fixture
def classification_process(blobs_dataset, fast_classifier):
    """Benchmark process on the easy classification dataset."""
    return BenchmarkProcess(blobs_dataset, fast_classifier, hpo_budget=3)


@pytest.fixture
def hard_process(hard_dataset, fast_classifier):
    """Benchmark process on the harder binary dataset."""
    return BenchmarkProcess(hard_dataset, fast_classifier, hpo_budget=3)


@pytest.fixture
def regression_process(regression_dataset, fast_regressor):
    """Benchmark process on the regression dataset."""
    return BenchmarkProcess(regression_dataset, fast_regressor, hpo_budget=3)
