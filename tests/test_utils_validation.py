"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_fraction,
    check_positive_int,
    check_probability,
    check_random_state,
)


class TestCheckArray:
    def test_converts_to_float(self):
        out = check_array([1, 2, 3])
        assert out.dtype == float

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_array([[1.0, 2.0]], ndim=1)

    def test_rejects_too_short(self):
        with pytest.raises(ValueError, match="at least"):
            check_array([1.0], min_length=2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_array([np.inf])


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3) == 3

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_int(0)

    def test_respects_minimum(self):
        assert check_positive_int(2, minimum=2) == 2
        with pytest.raises(ValueError):
            check_positive_int(1, minimum=2)

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            check_positive_int(2.5)


class TestCheckProbabilityAndFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts_bounds(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_probability_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value)

    def test_fraction_rejects_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0)
        with pytest.raises(ValueError):
            check_fraction(1.0)

    def test_fraction_accepts_interior(self):
        assert check_fraction(0.3) == 0.3


class TestCheckRandomState:
    def test_passes_generator_through(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_seed_gives_reproducible_generator(self):
        a = check_random_state(5).random(3)
        b = check_random_state(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)
