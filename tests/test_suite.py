"""Tests for suite manifests (SuiteSpec / run_suite / submit_suite).

Covers the workflow-as-data contract end to end:

* ``SuiteSpec`` — validation and the lossless JSON round-trip
  (property-tested over every accepted input shape);
* suite execution — a manifest run through one shared session/cache is
  bitwise-identical to the same specs run individually through
  ``Session.run`` against the same ``cache_dir``, at ``n_jobs`` 1 and 4;
* resume — completed members replay from their records with zero cache
  lookups, a changed spec invalidates its record, and the shared on-disk
  store never exceeds its configured byte budget;
* ``submit_suite`` — streaming per-member results, canonical assembly
  order and cancellation;
* the CLI acceptance path: ``python -m repro suite manifest.json`` cold,
  then ``--resume`` with zero misses.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.api import (
    Session,
    StudySpec,
    SuiteSpec,
    get_study,
    list_studies,
    smoke_suite,
)
from repro.engine.cache import FileStore

ALL_STUDIES = list_studies()

# The canonical three-member suite, its store budget and the row
# canonicalizer are shared with test_sched/test_serve via conftest.
from suite_fixtures import STORE_BUDGET, SUITE_MEMBERS, canonical_rows, make_suite


def _make_suite(directory, *, n_jobs=None, members=SUITE_MEMBERS):
    return make_suite(
        directory, members=members, n_jobs=n_jobs, max_store_bytes=STORE_BUDGET
    )


_rows = canonical_rows


# ----------------------------------------------------------------------
# SuiteSpec: round-trip and validation
# ----------------------------------------------------------------------
_names = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._-]{0,8}", fullmatch=True)

_param_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=2),
    max_leaves=4,
)

_member_specs = st.builds(
    StudySpec,
    study=st.sampled_from(ALL_STUDIES),
    params=st.dictionaries(st.text(min_size=1, max_size=8), _param_values, max_size=3),
    n_jobs=st.none() | st.integers(min_value=-1, max_value=8),
    backend=st.none() | st.sampled_from(["serial", "thread", "process"]),
    random_state=st.none() | st.integers(min_value=0, max_value=2**31),
)


@st.composite
def _suites(draw):
    members = draw(
        st.dictionaries(_names, _member_specs, min_size=1, max_size=4)
    )
    cache_dir = draw(st.none() | st.just(".cache"))
    budgets = {}
    if cache_dir is not None:
        budgets["max_store_bytes"] = draw(
            st.none() | st.integers(min_value=1, max_value=2**40)
        )
        budgets["max_store_entries"] = draw(
            st.none() | st.integers(min_value=1, max_value=10**6)
        )
    names = list(members)
    priorities = {
        name: draw(
            st.integers(min_value=-5, max_value=5), label=f"priority-{name}"
        )
        for name in names
        if draw(st.booleans(), label=f"has-priority-{name}")
    }
    # Acyclic by construction: members may only depend on earlier ones.
    depends_on = {}
    for index, name in enumerate(names[1:], start=1):
        if draw(st.booleans(), label=f"has-deps-{name}"):
            targets = draw(
                st.lists(
                    st.sampled_from(names[:index]), min_size=1, unique=True
                ),
                label=f"deps-{name}",
            )
            depends_on[name] = targets
    return SuiteSpec(
        name=draw(_names),
        specs=members,
        n_jobs=draw(st.none() | st.integers(min_value=-1, max_value=8)),
        backend=draw(st.none() | st.sampled_from(["serial", "thread", "process"])),
        cache_dir=cache_dir,
        priorities=priorities,
        depends_on=depends_on,
        **budgets,
    )


class TestSuiteSpec:
    @settings(max_examples=150, deadline=None)
    @given(suite=_suites())
    def test_json_round_trip_property(self, suite):
        assert SuiteSpec.from_json(suite.to_json()) == suite
        assert SuiteSpec.from_dict(suite.to_dict()) == suite
        assert json.loads(suite.to_json())["name"] == suite.name

    def test_accepted_input_shapes_are_equivalent(self):
        spec = StudySpec(study="sample_size", params={"gammas": [0.7]})
        from_mapping = SuiteSpec(name="s", specs={"a": spec})
        from_pairs = SuiteSpec(name="s", specs=[("a", spec)])
        from_manifest = SuiteSpec(
            name="s", specs=[{"name": "a", "spec": spec.to_dict()}]
        )
        assert from_mapping == from_pairs == from_manifest

    def test_container_protocol(self):
        suite = _make_suite("d")
        assert len(suite) == 3
        assert suite.names == [name for name, _ in SUITE_MEMBERS]
        assert suite["fig1-variance"].study == "variance"
        assert list(suite) == list(SUITE_MEMBERS)
        with pytest.raises(KeyError, match="members"):
            suite["absent"]

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one spec"):
            SuiteSpec(name="s", specs=[])

    def test_duplicate_names_rejected(self):
        spec = StudySpec(study="sample_size")
        with pytest.raises(ValueError, match="duplicate"):
            SuiteSpec(name="s", specs=[("a", spec), ("a", spec)])

    def test_unsafe_names_rejected(self):
        spec = StudySpec(study="sample_size")
        for bad in ("", "a/b", "../up", ".hidden", "a b"):
            with pytest.raises(ValueError, match="name"):
                SuiteSpec(name="s", specs=[(bad, spec)])
        with pytest.raises(ValueError, match="suite name"):
            SuiteSpec(name="bad/name", specs=[("a", spec)])

    def test_malformed_entries_rejected_with_position(self):
        with pytest.raises(ValueError, match="entry #0"):
            SuiteSpec(name="s", specs=[{"nome": "a", "spec": {}}])
        with pytest.raises(ValueError, match="entry #1"):
            SuiteSpec(
                name="s",
                specs=[
                    {"name": "a", "spec": {"study": "sample_size"}},
                    42,
                ],
            )

    def test_member_spec_errors_carry_the_member_name(self):
        with pytest.raises(ValueError, match="suite spec 'broken'"):
            SuiteSpec(name="s", specs=[("broken", {"study": ""})])

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown SuiteSpec fields"):
            SuiteSpec.from_dict(
                {"name": "s", "specs": [], "jobs": 2}
            )
        with pytest.raises(ValueError, match="missing"):
            SuiteSpec.from_dict({"name": "s"})

    def test_store_budgets_require_cache_dir(self):
        spec = StudySpec(study="sample_size")
        with pytest.raises(ValueError, match="cache_dir"):
            SuiteSpec(name="s", specs=[("a", spec)], max_store_bytes=1024)

    def test_validate_names_offending_member(self):
        suite = SuiteSpec(
            name="s", specs=[("bad", StudySpec(study="nope"))]
        )
        with pytest.raises(ValueError, match="suite spec 'bad'.*unknown study"):
            suite.validate()
        suite = SuiteSpec(
            name="s",
            specs=[("bad", StudySpec(study="variance", params={"bogus": 1}))],
        )
        with pytest.raises(ValueError, match="suite spec 'bad'"):
            suite.validate()

    def test_replace_revalidates(self):
        suite = _make_suite("d")
        assert suite.replace(n_jobs=4).n_jobs == 4
        with pytest.raises(ValueError):
            suite.replace(backend="mpi")

    def test_smoke_suite_covers_every_registered_study(self):
        suite = smoke_suite(cache_dir=".c", max_store_bytes=STORE_BUDGET)
        assert suite.names == ALL_STUDIES
        suite.validate()
        for name, spec in suite:
            assert spec.study == name
            assert dict(spec.params) == dict(get_study(name).smoke_params)


# ----------------------------------------------------------------------
# Suite execution == individual execution, bitwise (the tentpole contract)
# ----------------------------------------------------------------------
class TestSuiteEqualsIndividualRuns:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_suite_matches_individual_runs_bitwise(self, tmp_path, n_jobs):
        directory = tmp_path / "store"
        suite = _make_suite(directory, n_jobs=n_jobs)
        with Session.for_suite(suite) as session:
            suite_result = session.run_suite(suite)
        assert suite_result.names == suite.names
        assert not suite_result.replayed
        # The same specs, run one at a time through plain Session.run
        # against the same cache_dir, must reproduce every row bitwise.
        for name, spec in SUITE_MEMBERS:
            with Session(n_jobs=n_jobs, cache_dir=str(directory)) as session:
                individual = session.run(spec)
            assert _rows(suite_result[name]) == _rows(individual), name
            assert suite_result[name].to_rows(), name
        # The shared store stayed within its configured byte budget.
        assert FileStore(str(directory)).total_bytes <= STORE_BUDGET

    def test_members_share_one_cache(self, tmp_path):
        # Two members with identical measurement work: the second replays
        # the first's measurements from the shared session cache.
        spec = StudySpec(
            study="binomial",
            params={"task_names": ["entailment"], "n_splits": 2, "dataset_size": 150},
            random_state=4,
        )
        suite = SuiteSpec(
            name="twins",
            specs=[("first", spec), ("second", spec.replace())],
            cache_dir=str(tmp_path / "store"),
        )
        with Session.for_suite(suite) as session:
            result = session.run_suite(suite)
        assert result["first"].cache_stats["misses"] > 0
        assert result["second"].cache_stats["misses"] == 0
        assert result["second"].cache_stats["hits"] > 0
        assert _rows(result["first"]) == _rows(result["second"])


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------
class TestSuiteResume:
    def test_resume_replays_every_member_with_zero_lookups(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            cold = session.run_suite(suite)
        with Session.for_suite(suite) as session:
            resumed = session.run_suite(suite, resume=True)
        assert resumed.replayed == suite.names
        # Nothing ran, nothing was even looked up: zero misses *and* hits.
        assert resumed.cache_stats.get("misses", 0) == 0
        assert resumed.cache_stats.get("hits", 0) == 0
        for name in suite.names:
            assert resumed[name].replayed
            assert _rows(resumed[name]) == _rows(cold[name]), name

    def test_changed_spec_invalidates_its_record(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            session.run_suite(suite)
        changed = [
            (name, spec.replace(random_state=99) if name == "fig2-binomial" else spec)
            for name, spec in SUITE_MEMBERS
        ]
        suite2 = suite.replace(specs=changed)
        with Session.for_suite(suite2) as session:
            resumed = session.run_suite(suite2, resume=True)
        assert resumed.replayed == ["fig1-variance", "figC1-sample-size"]
        assert not resumed["fig2-binomial"].replayed

    def test_resume_without_cache_dir_rejected(self):
        suite = SuiteSpec(name="s", specs=SUITE_MEMBERS)
        with Session() as session:
            with pytest.raises(ValueError, match="cache_dir"):
                session.run_suite(suite, resume=True)
            with pytest.raises(ValueError, match="cache_dir"):
                session.submit_suite(suite, resume=True)

    def test_progress_events_stream_in_order(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        events = []
        with Session.for_suite(suite) as session:
            session.run_suite(
                suite,
                progress=lambda event, name, i, total, result: events.append(
                    (event, name, i, total, result is not None)
                ),
            )
        assert events == [
            ("start", "fig1-variance", 0, 3, False),
            ("done", "fig1-variance", 0, 3, True),
            ("start", "fig2-binomial", 1, 3, False),
            ("done", "fig2-binomial", 1, 3, True),
            ("start", "figC1-sample-size", 2, 3, False),
            ("done", "figC1-sample-size", 2, 3, True),
        ]
        with Session.for_suite(suite) as session:
            session.run_suite(
                suite,
                resume=True,
                progress=lambda event, name, *rest: events.append((event, name)),
            )
        assert events[-3:] == [
            ("replay", "fig1-variance"),
            ("replay", "fig2-binomial"),
            ("replay", "figC1-sample-size"),
        ]

    def test_manifest_written_alongside_records(self, tmp_path):
        directory = tmp_path / "store"
        suite = _make_suite(directory)
        with Session.for_suite(suite) as session:
            session.run_suite(suite)
        records = directory / "suites" / suite.name
        for name in suite.names:
            assert (records / f"{name}.json").exists()
        manifest = json.loads((records / "manifest.json").read_text())
        assert [entry["name"] for entry in manifest["results"]] == suite.names


# ----------------------------------------------------------------------
# submit_suite: streaming handles
# ----------------------------------------------------------------------
class TestSubmitSuite:
    def test_streams_and_assembles_in_canonical_order(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            handle = session.submit_suite(suite)
            assert len(handle) == 3
            assert handle.names == suite.names
            streamed = dict(handle)
            result = handle.result()
            assert handle.done()
        assert set(streamed) == set(suite.names)
        assert result.names == suite.names  # canonical, not completion, order
        for name in suite.names:
            assert _rows(result[name]) == _rows(streamed[name]), name

    def test_submit_suite_equals_run_suite_bitwise(self, tmp_path):
        suite = _make_suite(tmp_path / "a")
        with Session.for_suite(suite) as session:
            sequential = session.run_suite(suite)
        suite_b = suite.replace(cache_dir=str(tmp_path / "b"))
        with Session.for_suite(suite_b) as session:
            concurrent = session.submit_suite(suite_b).result()
        for name in suite.names:
            assert _rows(sequential[name]) == _rows(concurrent[name]), name

    def test_resume_members_resolve_immediately(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            session.run_suite(suite)
        with Session.for_suite(suite) as session:
            handle = session.submit_suite(suite, resume=True)
            # Replayed members are pre-resolved futures.
            assert handle.done()
            result = handle.result()
        assert result.replayed == suite.names

    def test_cancel_drains_without_hanging(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite, max_concurrent_studies=1) as session:
            handle = session.submit_suite(suite)
            handle.cancel()
            assert handle.cancelled()
            drained = dict(handle.partial_results())
            assert handle.done()
        # Whatever completed before the cancel is still readable.
        for result in drained.values():
            assert result.to_rows()


# ----------------------------------------------------------------------
# In-process scheduling: priorities and dependencies
# ----------------------------------------------------------------------
class TestInProcessScheduling:
    def test_run_suite_orders_fanout_by_priority(self, tmp_path):
        # The analytic member outranks everything: it runs first even
        # though it is declared last, and results still assemble in
        # canonical manifest order.
        suite = _make_suite(tmp_path / "store").replace(
            priorities={"figC1-sample-size": 10, "fig2-binomial": 5}
        )
        events = []
        with Session.for_suite(suite) as session:
            result = session.run_suite(
                suite,
                progress=lambda event, name, *rest: events.append((event, name)),
            )
        started = [name for event, name in events if event == "start"]
        assert started == ["figC1-sample-size", "fig2-binomial", "fig1-variance"]
        assert result.names == suite.names  # canonical, not execution, order

    def test_run_suite_runs_dependencies_first(self, tmp_path):
        suite = _make_suite(tmp_path / "store").replace(
            priorities={"fig1-variance": 10},
            depends_on={"fig1-variance": ["figC1-sample-size"]},
        )
        events = []
        with Session.for_suite(suite) as session:
            session.run_suite(
                suite,
                progress=lambda event, name, *rest: events.append((event, name)),
            )
        started = [name for event, name in events if event == "start"]
        # Highest priority, but gated on its dependency.
        assert started.index("figC1-sample-size") < started.index(
            "fig1-variance"
        )

    def test_submit_suite_blocks_dependents_on_dependencies(self, tmp_path):
        suite = _make_suite(tmp_path / "store").replace(
            depends_on={
                "fig2-binomial": ["fig1-variance"],
                "figC1-sample-size": ["fig2-binomial"],
            }
        )
        done_order = []
        with Session.for_suite(suite, max_concurrent_studies=3) as session:
            handle = session.submit_suite(suite)
            for name, _ in handle:
                done_order.append(name)
            handle.result()
        assert done_order == [
            "fig1-variance",
            "fig2-binomial",
            "figC1-sample-size",
        ]

    def test_bitwise_identical_regardless_of_scheduling(self, tmp_path):
        plain = _make_suite(tmp_path / "a")
        scheduled = _make_suite(tmp_path / "b").replace(
            priorities={"figC1-sample-size": 3},
            depends_on={"fig2-binomial": ["figC1-sample-size"]},
        )
        with Session.for_suite(plain) as session:
            first = session.run_suite(plain)
        with Session.for_suite(scheduled) as session:
            second = session.run_suite(scheduled)
        for name in plain.names:
            assert _rows(first[name]) == _rows(second[name]), name


# ----------------------------------------------------------------------
# Full-fidelity resume: native result objects survive the round-trip
# ----------------------------------------------------------------------
class TestFullFidelityResume:
    def test_resume_restores_native_attributes(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            cold = session.run_suite(suite)
        with Session.for_suite(suite) as session:
            resumed = session.run_suite(suite, resume=True)
        assert resumed.replayed == suite.names
        variance = resumed["fig1-variance"]
        # Not the rows-only stand-in: the driver's own result class, with
        # its study-specific attributes intact.
        assert type(variance.raw).__name__ == "VarianceStudyResult"
        assert variance.raw.decompositions
        assert type(resumed["fig2-binomial"].raw).__name__ == type(
            cold["fig2-binomial"].raw
        ).__name__
        for name in suite.names:
            assert _rows(resumed[name]) == _rows(cold[name]), name

    def test_stale_pickle_degrades_to_recorded_rows(self, tmp_path):
        suite = _make_suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            cold = session.run_suite(suite)
        records = tmp_path / "store" / "suites" / suite.name
        # Corrupt one member's pickle: resume must fall back to the JSON
        # record (rows + report) rather than fail or resurrect stale raw.
        (records / "fig1-variance.raw.pkl").write_bytes(b"not a pickle")
        with Session.for_suite(suite) as session:
            resumed = session.run_suite(suite, resume=True)
        assert resumed.replayed == suite.names
        assert type(resumed["fig1-variance"].raw).__name__ == "_ReplayedRaw"
        assert _rows(resumed["fig1-variance"]) == _rows(cold["fig1-variance"])


# ----------------------------------------------------------------------
# CLI acceptance: cold suite run, then --resume with zero misses
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSuiteCLIAcceptance:
    def test_cold_run_matches_individual_then_resume_zero_miss(
        self, tmp_path, capsys
    ):
        directory = tmp_path / "store"
        suite = _make_suite(directory)
        manifest = tmp_path / "manifest.json"
        manifest.write_text(suite.to_json(indent=2))

        assert main(["suite", str(manifest), "--json"]) == 0
        captured = capsys.readouterr()
        cold = json.loads(captured.out)
        assert [r["name"] for r in cold["results"]] == suite.names
        assert cold["replayed"] == []
        for line in ("[1/3]", "[2/3]", "[3/3]"):
            assert line in captured.err  # per-member streaming progress

        # Bitwise-identical to the same specs run individually.
        by_name = {r["name"]: r for r in cold["results"]}
        for name, spec in SUITE_MEMBERS:
            with Session(cache_dir=str(directory)) as session:
                individual = json.loads(session.run(spec).to_json())
            assert json.dumps(by_name[name]["rows"], sort_keys=True) == json.dumps(
                individual["rows"], sort_keys=True
            ), name

        # Second invocation resumes: everything replays, zero misses, and
        # the store stayed within its byte budget throughout.
        assert main(["suite", str(manifest), "--resume", "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["replayed"] == suite.names
        assert (resumed["cache_stats"] or {}).get("misses", 0) == 0
        assert [r["rows"] for r in resumed["results"]] == [
            r["rows"] for r in cold["results"]
        ]
        assert FileStore(str(directory)).total_bytes <= STORE_BUDGET
