"""Variance-provenance reports: budgets, rendering, and cache-path parity.

Reports are a pure function of the completion records a suite leaves
behind — zero re-execution, byte-identical regardless of which execution
path (in-process ``run``, ``run_suite``, or the distributed queue)
produced the cache.  Golden files under ``tests/golden/`` pin the exact
bytes; regenerate them with ``REPRO_UPDATE_GOLDEN=1 pytest
tests/test_report.py``.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, StudySpec, SuiteSpec
from repro.report import (
    ReportError,
    budgets_from_rows,
    build_member_report,
    build_suite_report,
    list_report_suites,
    load_suite_records,
    render_member_markdown,
    render_suite_markdown,
    write_suite_reports,
)
from repro.report.builder import _dump

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

ABLATION_PARAMS = {
    "task_names": ["entailment"],
    "combos": ["none", "dropout", "order", "all"],
    "n_seeds": 3,
    "dataset_size": 150,
}


def _ablation_row(combo, layers_on, variance, task="entailment", n_seeds=3):
    return {
        "combo": combo,
        "task": task,
        "layers_on": list(layers_on),
        "n_seeds": n_seeds,
        "mean": 0.8,
        "std": variance**0.5,
        "variance": variance,
    }


#: A fixed, synthetic completion record — no training required, so the
#: golden bytes only change when the report code changes.
SYNTHETIC_RECORD = {
    "record": 1,
    "study": "layer_ablation",
    "artefact": "Variance provenance",
    "spec": {
        "study": "layer_ablation",
        "params": {"combos": ["none", "dropout", "order", "all"], "n_seeds": 3},
        "random_state": 7,
    },
    "elapsed_seconds": 12.5,
    "cache_stats": {"hits": 9, "misses": 3},
    "rows": [
        _ablation_row("none", (), 0.0),
        _ablation_row("dropout", ("dropout",), 0.0025),
        _ablation_row("order", ("order",), 0.01),
        _ablation_row("all", ("dropout", "order"), 0.02),
    ],
    "report": "Layer ablation\n==============\nfour rows\n",
}


def _check_golden(name: str, data: bytes) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(data)
    with open(path, "rb") as handle:
        expected = handle.read()
    assert data == expected, (
        f"{name} drifted from tests/golden/ — if the change is intended, "
        f"regenerate with REPRO_UPDATE_GOLDEN=1"
    )


# ----------------------------------------------------------------------
# Budget extraction (hypothesis)
# ----------------------------------------------------------------------
_VAR = st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False)


class TestBudgetsFromRows:
    @given(
        components=st.dictionaries(
            st.sampled_from(("augment", "dropout", "init", "order")),
            _VAR,
            min_size=1,
        ),
        total=_VAR,
        floor=_VAR,
    )
    @settings(max_examples=200, deadline=None)
    def test_fractions_bounded_and_budget_closes(self, components, total, floor):
        rows = [_ablation_row("none", (), floor)]
        for layer, variance in sorted(components.items()):
            rows.append(_ablation_row(layer, (layer,), variance))
        rows.append(_ablation_row("all", tuple(sorted(components)), total))
        (budget,) = budgets_from_rows(rows)
        assert set(budget["fractions"]) == set(components)
        for fraction in budget["fractions"].values():
            assert 0.0 <= fraction <= 1.0
        assert sum(budget["fractions"].values()) + budget[
            "residual_fraction"
        ] == pytest.approx(1.0, abs=1e-9)
        assert budget["floor_variance"] == floor
        assert json.loads(json.dumps(budget)) == budget  # JSON-safe

    def test_non_ablation_rows_yield_no_budgets(self):
        assert budgets_from_rows([]) == []
        assert budgets_from_rows([{"task": "a", "n_seeds": 5, "mean": 0.5}]) == []

    def test_grid_without_all_combo_yields_no_budget(self):
        rows = [_ablation_row("dropout", ("dropout",), 0.1)]
        assert budgets_from_rows(rows) == []

    def test_tasks_sorted_deterministically(self):
        rows = []
        for task in ("zeta", "alpha"):
            rows.append(_ablation_row("dropout", ("dropout",), 0.1, task=task))
            rows.append(_ablation_row("all", ("dropout", "order"), 0.3, task=task))
        assert [b["task"] for b in budgets_from_rows(rows)] == ["alpha", "zeta"]


# ----------------------------------------------------------------------
# Golden files
# ----------------------------------------------------------------------
class TestGoldenSnapshots:
    def test_member_payload_json(self):
        member = build_member_report(SYNTHETIC_RECORD, name="ablation-demo")
        _check_golden("member_report.json", _dump(member))

    def test_member_payload_markdown(self):
        member = build_member_report(SYNTHETIC_RECORD, name="ablation-demo")
        _check_golden("member_report.md", render_member_markdown(member).encode())

    def test_suite_index_markdown(self):
        member = build_member_report(SYNTHETIC_RECORD, name="ablation-demo")
        payload = {"format": 1, "suite": "golden-suite", "members": [member]}
        _check_golden("suite_index.md", render_suite_markdown(payload).encode())

    def test_volatile_provenance_excluded(self):
        member = build_member_report(SYNTHETIC_RECORD, name="ablation-demo")
        blob = _dump(member).decode()
        assert "elapsed_seconds" not in blob
        assert "cache_stats" not in blob


# ----------------------------------------------------------------------
# Record loading / error paths
# ----------------------------------------------------------------------
class TestLoadSuiteRecords:
    def test_missing_cache_dir(self, tmp_path):
        with pytest.raises(ReportError, match="does not exist"):
            load_suite_records(str(tmp_path / "nope"), "s")
        with pytest.raises(ReportError, match="does not exist"):
            list_report_suites(str(tmp_path / "nope"))

    def test_no_records_for_suite(self, tmp_path):
        assert list_report_suites(str(tmp_path)) == []
        with pytest.raises(ReportError, match="no completion records"):
            load_suite_records(str(tmp_path), "missing-suite")

    def test_empty_records_dir(self, tmp_path):
        (tmp_path / "suites" / "s").mkdir(parents=True)
        with pytest.raises(ReportError, match="no member records"):
            load_suite_records(str(tmp_path), "s")

    def test_corrupted_record(self, tmp_path):
        records = tmp_path / "suites" / "s"
        records.mkdir(parents=True)
        (records / "m.json").write_text("{not json")
        with pytest.raises(ReportError, match="corrupted completion record"):
            load_suite_records(str(tmp_path), "s")

    def test_record_missing_rows(self, tmp_path):
        records = tmp_path / "suites" / "s"
        records.mkdir(parents=True)
        (records / "m.json").write_text('{"study": "x"}')
        with pytest.raises(ReportError, match="missing 'rows'"):
            load_suite_records(str(tmp_path), "s")

    def test_manifest_member_without_record_is_incomplete(self, tmp_path):
        records = tmp_path / "suites" / "s"
        records.mkdir(parents=True)
        (records / "a.json").write_text(json.dumps({"rows": []}))
        manifest = {"suite": {"specs": [{"name": "a"}, {"name": "b"}]}}
        (records / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ReportError, match="incomplete: member 'b'"):
            load_suite_records(str(tmp_path), "s")

    def test_corrupted_manifest(self, tmp_path):
        records = tmp_path / "suites" / "s"
        records.mkdir(parents=True)
        (records / "manifest.json").write_text("{broken")
        with pytest.raises(ReportError, match="corrupted suite manifest"):
            load_suite_records(str(tmp_path), "s")

    def test_manifest_orders_members(self, tmp_path):
        records = tmp_path / "suites" / "s"
        records.mkdir(parents=True)
        for name in ("alpha", "zebra"):
            (records / f"{name}.json").write_text(json.dumps({"rows": []}))
        manifest = {"suite": {"specs": [{"name": "zebra"}, {"name": "alpha"}]}}
        (records / "manifest.json").write_text(json.dumps(manifest))
        assert list(load_suite_records(str(tmp_path), "s")) == ["zebra", "alpha"]


# ----------------------------------------------------------------------
# Report tree generation
# ----------------------------------------------------------------------
def _suite(tmp_path, name="prov-suite"):
    spec = StudySpec(study="layer_ablation", params=ABLATION_PARAMS, random_state=7)
    return SuiteSpec(name=name, specs=[("ablation", spec)], cache_dir=str(tmp_path))


class TestWriteSuiteReports:
    def test_regeneration_is_byte_identical(self, tmp_path):
        session = Session.for_suite(_suite(tmp_path))
        session.run_suite(_suite(tmp_path))
        _, first_paths = write_suite_reports(str(tmp_path), "prov-suite")
        snapshots = {path: open(path, "rb").read() for path in first_paths}
        _, second_paths = write_suite_reports(str(tmp_path), "prov-suite")
        assert second_paths == first_paths
        for path in first_paths:
            with open(path, "rb") as handle:
                assert handle.read() == snapshots[path], path

    def test_tree_layout(self, tmp_path):
        session = Session.for_suite(_suite(tmp_path))
        session.run_suite(_suite(tmp_path))
        payload, paths = write_suite_reports(str(tmp_path), "prov-suite")
        names = sorted(os.path.basename(path) for path in paths)
        assert names == ["ablation.json", "ablation.md", "index.json", "index.md"]
        assert all("reports" in path for path in paths)
        assert payload["members"][0]["name"] == "ablation"
        assert payload["members"][0]["budgets"], "ablation rows must yield a budget"


# ----------------------------------------------------------------------
# Cross-path parity: run vs run_suite vs distributed queue
# ----------------------------------------------------------------------
class TestCrossPathParity:
    def test_reports_byte_identical_across_execution_paths(self, tmp_path):
        spec = StudySpec(
            study="layer_ablation", params=ABLATION_PARAMS, random_state=7
        )

        # Path 1: plain in-process run, report from the in-memory record.
        direct = Session().run(spec)
        from_run = _dump(build_member_report(direct.to_record(), name="ablation"))

        # Path 2: run_suite writes completion records to disk.
        suite_dir = tmp_path / "suite"
        session = Session.for_suite(_suite(suite_dir))
        session.run_suite(_suite(suite_dir))
        suite_payload = build_suite_report(str(suite_dir), "prov-suite")
        from_suite = _dump(suite_payload["members"][0])

        # Path 3: distributed queue (in-process participant drains it).
        dist_dir = tmp_path / "dist"
        dist_session = Session.for_suite(_suite(dist_dir))
        dist_session.run_suite(
            _suite(dist_dir), distributed=True, poll_seconds=0.05
        )
        dist_payload = build_suite_report(str(dist_dir), "prov-suite")
        from_queue = _dump(dist_payload["members"][0])

        assert from_run == from_suite
        assert from_suite == from_queue
