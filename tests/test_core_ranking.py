"""Tests for variance-aware ranking of many algorithms."""

import numpy as np
import pytest

from repro.core.ranking import rank_algorithms


def _paired_scores(rng, means, sigma=0.02, k=30):
    shared = rng.normal(0, sigma / 2, size=k)
    return {
        name: mean + shared + rng.normal(0, sigma, size=k)
        for name, mean in means.items()
    }


class TestRankAlgorithms:
    def test_leader_is_best_mean(self, rng):
        scores = _paired_scores(rng, {"a": 0.7, "b": 0.8, "c": 0.75})
        ranking = rank_algorithms(scores, random_state=0)
        assert ranking.leader.name == "b"
        assert [e.name for e in ranking.entries] == ["b", "c", "a"]

    def test_clearly_worse_algorithm_outside_bounds(self, rng):
        scores = _paired_scores(rng, {"strong": 0.9, "weak": 0.6})
        ranking = rank_algorithms(scores, random_state=0)
        assert ranking.top_group == ["strong"]
        weak_entry = ranking.entries[1]
        assert not weak_entry.within_significance_bounds
        assert weak_entry.comparison_with_leader.meaningful

    def test_statistical_ties_share_top_group(self, rng):
        scores = _paired_scores(rng, {"a": 0.800, "b": 0.801, "c": 0.799})
        ranking = rank_algorithms(scores, random_state=0)
        assert set(ranking.top_group) == {"a", "b", "c"}

    def test_gamma_correction_raises_threshold(self, rng):
        scores = _paired_scores(rng, {"a": 0.8, "b": 0.79, "c": 0.78, "d": 0.77})
        corrected = rank_algorithms(scores, random_state=0)
        uncorrected = rank_algorithms(
            scores, correct_for_multiple_comparisons=False, random_state=0
        )
        assert corrected.effective_gamma > uncorrected.effective_gamma
        # A stricter threshold can only enlarge (or keep) the top group.
        assert set(uncorrected.top_group) <= set(corrected.top_group)

    def test_report_and_rows(self, rng):
        scores = _paired_scores(rng, {"a": 0.8, "b": 0.7})
        ranking = rank_algorithms(scores, random_state=0)
        rows = ranking.as_rows()
        assert rows[0]["rank"] == 1
        assert "Benchmark ranking" in ranking.report()

    def test_requires_two_algorithms(self, rng):
        with pytest.raises(ValueError):
            rank_algorithms({"only": np.ones(5)})

    def test_requires_equal_lengths(self, rng):
        with pytest.raises(ValueError):
            rank_algorithms({"a": np.ones(5), "b": np.ones(6)})
