"""Tests for bootstrap / out-of-bootstrap resampling (Appendix B)."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.resampling import (
    BootstrapResampler,
    CrossValidationResampler,
    bootstrap_split,
    out_of_bootstrap_indices,
)


class TestOutOfBootstrapIndices:
    def test_in_bag_size(self, rng):
        in_bag, _ = out_of_bootstrap_indices(100, rng)
        assert in_bag.size == 100

    def test_out_of_bag_disjoint_from_in_bag(self, rng):
        in_bag, out_of_bag = out_of_bootstrap_indices(200, rng)
        assert set(in_bag).isdisjoint(out_of_bag)

    def test_out_of_bag_fraction_near_e_inverse(self, rng):
        # Expected out-of-bag fraction is (1 - 1/n)^n -> 1/e ~ 0.368.
        sizes = [out_of_bootstrap_indices(1000, rng)[1].size for _ in range(20)]
        assert abs(np.mean(sizes) / 1000 - 0.368) < 0.03

    def test_custom_draw_count(self, rng):
        in_bag, _ = out_of_bootstrap_indices(50, rng, n_draws=10)
        assert in_bag.size == 10


class TestBootstrapSplit:
    def test_no_leakage_between_train_and_test(self, blobs_dataset, rng):
        train, valid, test = bootstrap_split(blobs_dataset, rng)
        # Compare raw rows: no test row may appear in train or valid.
        train_rows = {tuple(row) for row in np.vstack([train.X, valid.X])}
        assert all(tuple(row) not in train_rows for row in test.X)

    def test_sizes_positive(self, blobs_dataset, rng):
        train, valid, test = bootstrap_split(blobs_dataset, rng)
        assert train.n_samples > 0 and valid.n_samples > 0 and test.n_samples > 0

    def test_stratified_train_keeps_class_balance(self, blobs_dataset, rng):
        train, _, _ = bootstrap_split(blobs_dataset, rng, stratify=True)
        counts = np.bincount(train.y.astype(int))
        assert counts.min() > 0
        assert counts.max() / counts.min() < 2.0

    def test_valid_fraction_respected(self, blobs_dataset, rng):
        train, valid, _ = bootstrap_split(blobs_dataset, rng, valid_fraction=0.4)
        total = train.n_samples + valid.n_samples
        assert abs(valid.n_samples / total - 0.4) < 0.1

    def test_regression_unstratified_path(self, regression_dataset, rng):
        train, valid, test = bootstrap_split(regression_dataset, rng)
        assert train.n_samples + valid.n_samples == regression_dataset.n_samples
        assert test.n_samples > 0


class TestDegenerateFallbackContamination:
    """Property: train/valid and test are disjoint even on tiny datasets.

    Small datasets frequently draw every index in the bootstrap, which
    triggers the hold-one-out fallback; duplicate draws of the held-out
    index must not remain in the in-bag set (a train/test leak).
    """

    @staticmethod
    def _unique_row_dataset(n, task_type):
        # Rows are their own identifiers, so row-level membership checks
        # are exact even after bootstrap duplication.
        X = np.arange(n, dtype=float).reshape(n, 1)
        if task_type == "classification":
            y = (np.arange(n) % 2).astype(int)
        else:
            y = np.linspace(0.0, 1.0, n)
        return Dataset(X=X, y=y, task_type=task_type)

    @pytest.mark.parametrize("task_type", ["classification", "regression"])
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_train_test_disjoint_across_many_draws(self, n, task_type):
        dataset = self._unique_row_dataset(n, task_type)
        rng = np.random.default_rng(20260727 + n)
        for _ in range(300):
            train, valid, test = bootstrap_split(dataset, rng, valid_fraction=0.25)
            assert test.n_samples > 0
            test_rows = set(test.X[:, 0].tolist())
            in_bag_rows = set(train.X[:, 0].tolist()) | set(valid.X[:, 0].tolist())
            assert test_rows.isdisjoint(in_bag_rows)

    def test_fallback_removes_all_duplicates_of_held_out_index(self):
        # Force the degenerate branch: a two-sample regression dataset draws
        # both indices often; whenever the fallback fires, every copy of the
        # held-out row must have left the in-bag set.
        dataset = self._unique_row_dataset(2, "regression")
        rng = np.random.default_rng(7)
        saw_fallback = False
        for _ in range(500):
            train, valid, test = bootstrap_split(dataset, rng, stratify=False)
            if train.n_samples + valid.n_samples < dataset.n_samples:
                saw_fallback = True
            held_out = set(test.X[:, 0].tolist())
            kept = list(train.X[:, 0].tolist()) + list(valid.X[:, 0].tolist())
            assert not held_out.intersection(kept)
        assert saw_fallback


class TestBootstrapResampler:
    def test_splits_differ_across_draws(self, blobs_dataset, rng):
        resampler = BootstrapResampler()
        first = resampler.split(blobs_dataset, rng)[2]
        second = resampler.split(blobs_dataset, rng)[2]
        assert first.n_samples != second.n_samples or not np.array_equal(first.X, second.X)

    def test_splits_iterator_count(self, blobs_dataset, rng):
        resampler = BootstrapResampler()
        assert len(list(resampler.splits(blobs_dataset, 4, rng))) == 4


class TestCrossValidationResampler:
    def test_yields_n_folds(self, blobs_dataset, rng):
        resampler = CrossValidationResampler(n_folds=5)
        folds = list(resampler.splits(blobs_dataset, rng))
        assert len(folds) == 5

    def test_test_folds_partition_dataset(self, blobs_dataset, rng):
        resampler = CrossValidationResampler(n_folds=4)
        test_sizes = sum(test.n_samples for _, _, test in resampler.splits(blobs_dataset, rng))
        assert test_sizes == blobs_dataset.n_samples

    def test_rejects_too_many_folds(self, rng, blobs_dataset):
        resampler = CrossValidationResampler(n_folds=10_000)
        with pytest.raises(ValueError):
            list(resampler.splits(blobs_dataset, rng))
