"""Tests for normality diagnostics."""

import numpy as np

from repro.stats.normality import normality_by_group, normality_report, shapiro_wilk_pvalue


class TestShapiroWilkPvalue:
    def test_normal_sample_passes(self, rng):
        assert shapiro_wilk_pvalue(rng.normal(size=200)) > 0.01

    def test_heavily_skewed_sample_fails(self, rng):
        assert shapiro_wilk_pvalue(rng.exponential(size=500) ** 3) < 0.01

    def test_degenerate_sample_returns_zero(self):
        assert shapiro_wilk_pvalue(np.ones(10)) == 0.0
        assert shapiro_wilk_pvalue(np.array([1.0, 2.0])) == 0.0


class TestNormalityReport:
    def test_fields(self, rng):
        report = normality_report(rng.normal(loc=3.0, scale=2.0, size=300))
        assert report.n == 300
        assert abs(report.mean - 3.0) < 0.5
        assert abs(report.std - 2.0) < 0.5

    def test_is_consistent_with_normal(self, rng):
        assert normality_report(rng.normal(size=200)).is_consistent_with_normal()

    def test_by_group(self, rng):
        groups = {"a": rng.normal(size=50), "b": rng.exponential(size=50)}
        reports = normality_by_group(groups)
        assert set(reports) == {"a", "b"}
