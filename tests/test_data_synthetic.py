"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    make_gaussian_blobs,
    make_nonlinear_classification,
    make_peptide_binding,
    make_segmentation_grids,
    make_sentiment_bags,
)


class TestGaussianBlobs:
    def test_shapes_and_labels(self):
        ds = make_gaussian_blobs(n_samples=100, n_features=5, n_classes=4, random_state=0)
        assert ds.X.shape == (100, 5)
        assert set(np.unique(ds.y)) <= set(range(4))

    def test_reproducible(self):
        a = make_gaussian_blobs(n_samples=50, random_state=3)
        b = make_gaussian_blobs(n_samples=50, random_state=3)
        np.testing.assert_array_equal(a.X, b.X)

    def test_separation_controls_difficulty(self):
        easy = make_gaussian_blobs(n_samples=300, class_separation=6.0, noise=0.5, random_state=0)
        hard = make_gaussian_blobs(n_samples=300, class_separation=0.5, noise=2.0, random_state=0)
        # Nearest-centroid accuracy should be much higher on the easy set.
        def centroid_accuracy(ds):
            centroids = np.stack([ds.X[ds.y == c].mean(axis=0) for c in np.unique(ds.y)])
            preds = np.argmin(
                ((ds.X[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1
            )
            return float(np.mean(np.unique(ds.y)[preds] == ds.y))

        assert centroid_accuracy(easy) > centroid_accuracy(hard) + 0.2


class TestNonlinearClassification:
    def test_binary_by_default(self):
        ds = make_nonlinear_classification(n_samples=100, random_state=0)
        assert set(np.unique(ds.y)) <= {0, 1}

    def test_all_classes_present(self):
        ds = make_nonlinear_classification(n_samples=500, random_state=1)
        assert len(np.unique(ds.y)) == 2


class TestSentimentBags:
    def test_features_are_normalized_counts(self):
        ds = make_sentiment_bags(n_samples=50, vocabulary_size=20, document_length=10, random_state=0)
        np.testing.assert_allclose(ds.X.sum(axis=1), 1.0)
        assert np.all(ds.X >= 0)

    def test_binary_labels(self):
        ds = make_sentiment_bags(n_samples=100, random_state=0)
        assert set(np.unique(ds.y)) <= {0, 1}


class TestPeptideBinding:
    def test_regression_targets_in_unit_interval(self):
        ds = make_peptide_binding(n_samples=80, random_state=0)
        assert ds.task_type == "regression"
        assert np.all(ds.y >= 0) and np.all(ds.y <= 1)

    def test_one_hot_feature_blocks(self):
        ds = make_peptide_binding(
            n_samples=10, peptide_length=3, allele_length=2, random_state=0
        )
        # 20 amino acids, (3 + 2) positions -> 100 features, 5 ones per row.
        assert ds.X.shape[1] == 100
        np.testing.assert_array_equal(ds.X.sum(axis=1), 5.0)

    def test_signal_exists(self):
        # A ridge fit on the one-hot features should beat predicting the mean:
        # the peptide one-hots carry a marginal (allele-averaged) effect.
        ds = make_peptide_binding(n_samples=2000, noise=0.05, random_state=0)
        X = np.hstack([ds.X, np.ones((ds.n_samples, 1))])
        train, test = slice(0, 1500), slice(1500, None)
        gram = X[train].T @ X[train] + 1.0 * np.eye(X.shape[1])
        coef = np.linalg.solve(gram, X[train].T @ ds.y[train])
        pred = X[test] @ coef
        ss_res = np.sum((ds.y[test] - pred) ** 2)
        ss_tot = np.sum((ds.y[test] - ds.y[test].mean()) ** 2)
        assert 1 - ss_res / ss_tot > 0.1


class TestSegmentationGrids:
    def test_labels_range(self):
        ds = make_segmentation_grids(n_samples=60, n_classes=5, random_state=0)
        assert ds.y.min() >= 0 and ds.y.max() < 4 + 1

    def test_feature_dimension(self):
        ds = make_segmentation_grids(n_samples=10, grid_size=6, random_state=0)
        assert ds.X.shape[1] == 36
