"""Tests for the binomial model of test-set noise (Figure 2)."""

import numpy as np
import pytest

from repro.stats.binomial import binomial_accuracy_std, binomial_std_curve, effective_test_size


class TestBinomialAccuracyStd:
    def test_matches_closed_form(self):
        assert binomial_accuracy_std(0.9, 100) == pytest.approx(np.sqrt(0.9 * 0.1 / 100))

    def test_decreases_with_test_size(self):
        assert binomial_accuracy_std(0.8, 10000) < binomial_accuracy_std(0.8, 100)

    def test_maximal_at_half(self):
        assert binomial_accuracy_std(0.5, 100) > binomial_accuracy_std(0.95, 100)

    def test_zero_at_perfect_accuracy(self):
        assert binomial_accuracy_std(1.0, 100) == 0.0

    def test_paper_scale_rte(self):
        # Glue-RTE: accuracy ~0.66 with n'=277 -> std ~2.8% (Figure 2).
        std = binomial_accuracy_std(0.66, 277)
        assert 0.02 < std < 0.04

    def test_paper_scale_cifar10(self):
        # CIFAR10: accuracy ~0.91 with n'=10000 -> std ~0.3%.
        std = binomial_accuracy_std(0.91, 10000)
        assert 0.002 < std < 0.004

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            binomial_accuracy_std(1.5, 100)
        with pytest.raises(ValueError):
            binomial_accuracy_std(0.5, 0)


class TestBinomialStdCurve:
    def test_monotone_decreasing(self):
        curve = binomial_std_curve(0.8, np.array([10, 100, 1000]))
        assert np.all(np.diff(curve) < 0)

    def test_matches_pointwise(self):
        curve = binomial_std_curve(0.7, np.array([50]))
        assert curve[0] == pytest.approx(binomial_accuracy_std(0.7, 50))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            binomial_std_curve(0.7, np.array([0, 10]))


class TestEffectiveTestSize:
    def test_inverts_binomial_model(self):
        std = binomial_accuracy_std(0.85, 400)
        assert effective_test_size(0.85, std) == pytest.approx(400)

    def test_correlated_errors_shrink_effective_size(self):
        nominal_std = binomial_accuracy_std(0.85, 400)
        assert effective_test_size(0.85, 2 * nominal_std) == pytest.approx(100)

    def test_rejects_zero_std(self):
        with pytest.raises(ValueError):
            effective_test_size(0.8, 0.0)
