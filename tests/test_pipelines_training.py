"""Tests for the seed-controlled training loop."""

import numpy as np
import pytest

from repro.data.augmentation import GaussianJitter
from repro.pipelines.nn.network import MLPNetwork
from repro.pipelines.nn.optimizers import SGD
from repro.pipelines.nn.schedules import ExponentialDecaySchedule
from repro.pipelines.training import TrainingConfig, train_network
from repro.utils.rng import SeedBundle


def _make_network(seeds):
    return MLPNetwork([6, 8, 3], init_rng=seeds.rng_for("init"), dropout_rate=0.2)


class TestTrainNetwork:
    def test_loss_decreases(self, blobs_dataset, seed_bundle):
        network = _make_network(seed_bundle)
        history = train_network(
            network,
            blobs_dataset,
            SGD(learning_rate=0.1, momentum=0.9),
            TrainingConfig(n_epochs=10, batch_size=32),
            seed_bundle,
        )
        assert history.losses[-1] < history.losses[0]

    def test_history_lengths(self, blobs_dataset, seed_bundle):
        network = _make_network(seed_bundle)
        history = train_network(
            network,
            blobs_dataset,
            SGD(learning_rate=0.05),
            TrainingConfig(n_epochs=4, batch_size=16),
            seed_bundle,
        )
        assert len(history.losses) == 4
        assert len(history.learning_rates) == 4

    def test_schedule_applied(self, blobs_dataset, seed_bundle):
        network = _make_network(seed_bundle)
        history = train_network(
            network,
            blobs_dataset,
            SGD(learning_rate=0.1),
            TrainingConfig(n_epochs=3, schedule=ExponentialDecaySchedule(0.1, gamma=0.5)),
            seed_bundle,
        )
        np.testing.assert_allclose(history.learning_rates, [0.1, 0.05, 0.025])

    def test_full_reproducibility_with_same_seeds(self, blobs_dataset, seed_bundle):
        outputs = []
        for _ in range(2):
            network = _make_network(seed_bundle)
            train_network(
                network,
                blobs_dataset,
                SGD(learning_rate=0.05, momentum=0.9),
                TrainingConfig(n_epochs=3, augmentations=(GaussianJitter(0.05),)),
                seed_bundle,
            )
            outputs.append(network.predict(blobs_dataset.X))
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_order_seed_changes_result(self, blobs_dataset, seed_bundle, rng):
        results = []
        for bundle in (seed_bundle, seed_bundle.randomized(["order"], rng)):
            network = _make_network(seed_bundle)  # same init for both
            train_network(
                network,
                blobs_dataset,
                SGD(learning_rate=0.05, momentum=0.9),
                TrainingConfig(n_epochs=3),
                bundle,
            )
            results.append(network.weights[0].copy())
        assert not np.allclose(results[0], results[1])

    def test_numerical_noise_applied_after_training(self, blobs_dataset, seed_bundle):
        quiet = _make_network(seed_bundle)
        noisy = _make_network(seed_bundle)
        for network, scale in ((quiet, 0.0), (noisy, 1e-3)):
            train_network(
                network,
                blobs_dataset,
                SGD(learning_rate=0.05),
                TrainingConfig(n_epochs=2, numerical_noise_scale=scale),
                seed_bundle,
            )
        assert not np.allclose(quiet.weights[0], noisy.weights[0])

    def test_invalid_config_rejected(self, blobs_dataset, seed_bundle):
        with pytest.raises(ValueError):
            train_network(
                _make_network(seed_bundle),
                blobs_dataset,
                SGD(learning_rate=0.05),
                TrainingConfig(n_epochs=0),
                seed_bundle,
            )
