"""Direct coverage of the CLI front door (``python -m repro``).

Exit-code contract: 0 on success (including a ``BrokenPipeError`` from a
closed pager), 2 for unreadable or malformed specs/manifests — with a
human ``error: ...`` message on stderr naming the problem, never a
traceback.  Success-path payload shapes (``run --json``, ``suite
--json``, ``gc --json``) are asserted structurally.
"""

import json

import pytest

from repro.__main__ import main
from repro.api import StudySpec, SuiteSpec, list_studies
from repro.engine.cache import FileStore


def _spec_file(tmp_path, spec: StudySpec):
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return str(path)


def _suite_file(tmp_path, suite: SuiteSpec, name="manifest.json"):
    path = tmp_path / name
    path.write_text(suite.to_json(indent=2))
    return str(path)


SPEC = StudySpec(
    study="sample_size", params={"gammas": [0.7, 0.75]}, random_state=0
)


class TestRunCommand:
    def test_json_payload_shape_and_exit_code(self, tmp_path, capsys):
        assert main(["run", _spec_file(tmp_path, SPEC), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["study"] == "sample_size"
        assert payload["spec"] == SPEC.to_dict()
        assert payload["rows"]

    def test_missing_file_exits_2_with_message(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "absent.json" in err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["run", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_study_exits_2(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"study": "nope", "params": {}}))
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown study" in err and "registered studies" in err

    def test_invalid_params_exit_2(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"study": "variance", "params": {"bogus": 1}}))
        assert main(["run", str(path)]) == 2
        assert "valid parameters" in capsys.readouterr().err

    def test_unknown_spec_field_exits_2(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"study": "variance", "jobs": 4}))
        assert main(["run", str(path)]) == 2
        assert "unknown StudySpec fields" in capsys.readouterr().err


class TestSuiteCommand:
    def test_summary_and_exit_code(self, tmp_path, capsys):
        suite = SuiteSpec(name="s", specs=[("only", SPEC)])
        assert main(["suite", _suite_file(tmp_path, suite)]) == 0
        captured = capsys.readouterr()
        assert "suite=s" in captured.out and "== only ==" in captured.out
        assert "[1/1] only" in captured.err

    def test_cache_dir_override_enables_resume(self, tmp_path, capsys):
        suite = SuiteSpec(name="s", specs=[("only", SPEC)])
        path = _suite_file(tmp_path, suite)
        store = str(tmp_path / "store")
        assert main(["suite", path, "--cache-dir", store]) == 0
        capsys.readouterr()
        assert main(["suite", path, "--cache-dir", store, "--resume", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replayed"] == ["only"]

    def test_resume_without_cache_dir_exits_2(self, tmp_path, capsys):
        suite = SuiteSpec(name="s", specs=[("only", SPEC)])
        assert main(["suite", _suite_file(tmp_path, suite), "--resume"]) == 2
        assert "--resume requires a cache_dir" in capsys.readouterr().err

    def test_manifest_must_be_an_object(self, tmp_path, capsys):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert main(["suite", str(path)]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_missing_required_keys_exit_2(self, tmp_path, capsys):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"name": "s"}))
        assert main(["suite", str(path)]) == 2
        assert "missing ['specs']" in capsys.readouterr().err

    def test_duplicate_member_names_exit_2(self, tmp_path, capsys):
        path = tmp_path / "dups.json"
        path.write_text(
            json.dumps(
                {
                    "name": "s",
                    "specs": [
                        {"name": "a", "spec": SPEC.to_dict()},
                        {"name": "a", "spec": SPEC.to_dict()},
                    ],
                }
            )
        )
        assert main(["suite", str(path)]) == 2
        assert "duplicate suite spec name" in capsys.readouterr().err

    def test_unknown_member_study_exits_2_naming_the_member(
        self, tmp_path, capsys
    ):
        path = tmp_path / "unknown.json"
        path.write_text(
            json.dumps(
                {
                    "name": "s",
                    "specs": [{"name": "m1", "spec": {"study": "nope"}}],
                }
            )
        )
        assert main(["suite", str(path)]) == 2
        err = capsys.readouterr().err
        assert "suite spec 'm1'" in err and "unknown study" in err

    def test_malformed_entry_shape_exits_2(self, tmp_path, capsys):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"name": "s", "specs": [{"nome": "x"}]}))
        assert main(["suite", str(path)]) == 2
        assert "entry #0" in capsys.readouterr().err

    def test_missing_manifest_exits_2(self, tmp_path, capsys):
        assert main(["suite", str(tmp_path / "absent.json")]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestGCCommand:
    def test_prunes_to_budget_and_reports(self, tmp_path, capsys):
        store = FileStore(str(tmp_path / "store"))
        for key in ("aa11", "bb22", "cc33"):
            store.write(key, "x" * 64)
        assert main(
            ["gc", str(tmp_path / "store"), "--max-entries", "1", "--json"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["removed_entries"] == 2
        assert stats["entries"] == 1
        assert len(FileStore(str(tmp_path / "store"))) == 1

    def test_human_output(self, tmp_path, capsys):
        store = FileStore(str(tmp_path / "store"))
        store.write("aa11", "x")
        assert main(["gc", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "removed 0 entries" in out and "1 entries" in out

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["gc", str(tmp_path / "nowhere")]) == 2
        assert "no cache directory" in capsys.readouterr().err


class TestListCommand:
    def test_lists_every_registered_study(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in list_studies():
            assert name in out

    def test_json_catalogue_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in catalogue] == list_studies()
        for entry in catalogue:
            assert set(entry) == {
                "name",
                "artefact",
                "description",
                "size_params",
                "smoke_params",
                "shard_param",
                "benchmark",
            }
            # smoke_params must round-trip into a runnable StudySpec.
            StudySpec(study=entry["name"], params=entry["smoke_params"])


class TestReportCommand:
    def _ran_suite(self, tmp_path):
        """Run a tiny suite against a cache dir; return (store, records)."""
        suite = SuiteSpec(name="s", specs=[("only", SPEC)])
        store = tmp_path / "store"
        assert main(
            ["suite", _suite_file(tmp_path, suite), "--cache-dir", str(store)]
        ) == 0
        return store, store / "suites" / "s"

    def test_generates_reports_from_cache_alone(self, tmp_path, capsys):
        store, _ = self._ran_suite(tmp_path)
        capsys.readouterr()
        assert main(["report", str(store)]) == 0
        out = capsys.readouterr().out
        assert "suite s: 1 member report(s)" in out
        for name in ("index.json", "index.md", "only.json", "only.md"):
            assert (store / "reports" / "s" / name).exists()

    def test_json_payload_shape(self, tmp_path, capsys):
        store, _ = self._ran_suite(tmp_path)
        capsys.readouterr()
        assert main(["report", str(store), "--suite", "s", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "s"
        assert [m["name"] for m in payload["members"]] == ["only"]
        assert payload["members"][0]["rows"]

    def test_missing_cache_dir_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "no cache directory" in err

    def test_empty_cache_dir_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no suite completion records" in err

    def test_unknown_suite_exits_2(self, tmp_path, capsys):
        store, _ = self._ran_suite(tmp_path)
        capsys.readouterr()
        assert main(["report", str(store), "--suite", "ghost"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "no completion records" in err

    def test_partial_suite_exits_2(self, tmp_path, capsys):
        store, records = self._ran_suite(tmp_path)
        (records / "only.json").unlink()
        capsys.readouterr()
        assert main(["report", str(store), "--suite", "s"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "incomplete" in err
        assert "re-run the suite" in err

    def test_corrupted_record_exits_2(self, tmp_path, capsys):
        store, records = self._ran_suite(tmp_path)
        (records / "only.json").write_text("{broken")
        capsys.readouterr()
        assert main(["report", str(store), "--suite", "s"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "corrupted completion record" in err

    def test_report_writes_nothing_to_the_object_store(self, tmp_path, capsys):
        """Zero re-execution: reporting never stores a new measurement."""
        store, _ = self._ran_suite(tmp_path)
        objects = FileStore(str(store))
        before = (len(objects), objects.total_bytes)
        capsys.readouterr()
        assert main(["report", str(store), "--suite", "s"]) == 0
        objects = FileStore(str(store))
        assert (len(objects), objects.total_bytes) == before
