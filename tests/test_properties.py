"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.sample_size import minimum_sample_size
from repro.data.resampling import out_of_bootstrap_indices
from repro.hpo.space import LogUniformDimension, SearchSpace, UniformDimension
from repro.stats.binomial import binomial_accuracy_std
from repro.stats.correlated import correlated_mean_variance
from repro.stats.mann_whitney import (
    paired_probability_of_outperforming,
    probability_of_outperforming,
)
from repro.utils.rng import SeedBundle, derive_seed

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
score_arrays = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=30),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestProbabilityOfOutperformingProperties:
    @given(a=score_arrays, b=score_arrays)
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_antisymmetric(self, a, b):
        p_ab = probability_of_outperforming(a, b)
        p_ba = probability_of_outperforming(b, a)
        assert 0.0 <= p_ab <= 1.0
        assert p_ab + p_ba == 1.0

    @given(a=score_arrays)
    @settings(max_examples=30, deadline=None)
    def test_self_comparison_is_half(self, a):
        assert paired_probability_of_outperforming(a, a.copy()) == 0.5

    @given(a=score_arrays, shift=st.floats(min_value=1e-3, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_uniform_improvement_gives_one(self, a, shift):
        assert paired_probability_of_outperforming(a + shift, a) == 1.0


class TestBinomialProperties:
    @given(
        accuracy=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_std_bounded_by_half_over_sqrt_n(self, accuracy, n):
        std = binomial_accuracy_std(accuracy, n)
        assert 0.0 <= std <= 0.5 / np.sqrt(n) + 1e-12


class TestEquation7Properties:
    @given(
        variance=st.floats(min_value=0.0, max_value=100.0),
        k=st.integers(min_value=1, max_value=1000),
        rho=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_variance_between_iid_and_full_correlation(self, variance, k, rho):
        value = correlated_mean_variance(variance, k, rho)
        assert variance / k - 1e-9 <= value <= variance + 1e-9

    @given(
        variance=st.floats(min_value=1e-6, max_value=10.0),
        k=st.integers(min_value=2, max_value=100),
        rho_low=st.floats(min_value=0.0, max_value=0.5),
        rho_delta=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_correlation(self, variance, k, rho_low, rho_delta):
        assert correlated_mean_variance(variance, k, rho_low) <= correlated_mean_variance(
            variance, k, rho_low + rho_delta
        ) + 1e-12


class TestBootstrapProperties:
    @given(n=st.integers(min_value=2, max_value=500), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_out_of_bag_disjoint_and_in_range(self, n, seed):
        rng = np.random.default_rng(seed)
        in_bag, out_of_bag = out_of_bootstrap_indices(n, rng)
        assert in_bag.size == n
        assert set(in_bag).isdisjoint(out_of_bag)
        assert set(in_bag) | set(out_of_bag) <= set(range(n))
        assert np.all(np.bincount(in_bag, minlength=n)[list(out_of_bag)] == 0)


class TestSeedProperties:
    @given(base=st.integers(min_value=0, max_value=2**31), key=st.text(max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_deterministic_and_in_range(self, base, key):
        seed = derive_seed(base, key)
        assert seed == derive_seed(base, key)
        assert 0 <= seed < 2**32

    @given(
        base=st.integers(min_value=0, max_value=2**31),
        source=st.sampled_from(["data", "init", "order", "hopt"]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_randomizing_one_source_preserves_others(self, base, source, seed):
        bundle = SeedBundle(base_seed=base)
        updated = bundle.randomized([source], np.random.default_rng(seed))
        for other in ("data", "init", "order", "dropout", "augment", "hopt", "numerical"):
            if other != source:
                assert updated.seed_for(other) == bundle.seed_for(other)


class TestSearchSpaceProperties:
    @given(
        low=st.floats(min_value=-100, max_value=99),
        width=st.floats(min_value=1e-3, max_value=100),
        unit=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_uniform_unit_roundtrip(self, low, width, unit):
        dim = UniformDimension(low, low + width)
        assert abs(dim.to_unit(dim.from_unit(unit)) - unit) < 1e-6

    @given(
        log_low=st.floats(min_value=-8, max_value=0),
        log_width=st.floats(min_value=0.1, max_value=6),
        unit=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_loguniform_sample_and_roundtrip(self, log_low, log_width, unit):
        dim = LogUniformDimension(10**log_low, 10 ** (log_low + log_width))
        value = dim.from_unit(unit)
        assert dim.low * (1 - 1e-9) <= value <= dim.high * (1 + 1e-9)
        assert abs(dim.to_unit(value) - unit) < 1e-6

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_space_sample_within_bounds(self, seed):
        space = SearchSpace(
            {
                "lr": LogUniformDimension(1e-5, 1e-1),
                "momentum": UniformDimension(0.5, 0.99),
            }
        )
        config = space.sample(np.random.default_rng(seed))
        assert 1e-5 <= config["lr"] <= 1e-1
        assert 0.5 <= config["momentum"] <= 0.99


class TestSampleSizeProperties:
    @given(gamma=st.floats(min_value=0.51, max_value=0.99))
    @settings(max_examples=100, deadline=None)
    def test_positive_and_monotone(self, gamma):
        size = minimum_sample_size(gamma)
        assert size >= 1
        if gamma < 0.98:
            assert minimum_sample_size(gamma + 0.01) <= size
