"""Tests for activations, initializers, losses, optimizers and schedules."""

import numpy as np
import pytest

from repro.pipelines.nn.activations import ACTIVATIONS
from repro.pipelines.nn.initializers import INITIALIZERS, initialize_weights
from repro.pipelines.nn.losses import cross_entropy_loss, mse_loss, softmax
from repro.pipelines.nn.optimizers import SGD, Adam
from repro.pipelines.nn.schedules import ConstantSchedule, ExponentialDecaySchedule


class TestActivations:
    @pytest.mark.parametrize("name", sorted(ACTIVATIONS))
    def test_derivative_matches_finite_difference(self, name):
        activation = ACTIVATIONS[name]
        x = np.linspace(-2, 2, 41)
        x = x[np.abs(x) > 1e-3]  # avoid the ReLU kink
        eps = 1e-6
        numeric = (activation.forward(x + eps) - activation.forward(x - eps)) / (2 * eps)
        analytic = activation.derivative(activation.forward(x))
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_relu_clamps_negatives(self):
        out = ACTIVATIONS["relu"].forward(np.array([-1.0, 0.5]))
        np.testing.assert_array_equal(out, [0.0, 0.5])

    def test_sigmoid_stable_for_large_inputs(self):
        out = ACTIVATIONS["sigmoid"].forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


class TestInitializers:
    def test_known_schemes(self):
        assert {"glorot_uniform", "he_normal", "gaussian"} <= set(INITIALIZERS)

    def test_initialize_weights_shapes(self, rng):
        weights, biases = initialize_weights([4, 8, 3], rng)
        assert [w.shape for w in weights] == [(4, 8), (8, 3)]
        assert [b.shape for b in biases] == [(8,), (3,)]
        assert all(np.all(b == 0) for b in biases)

    def test_glorot_limit(self, rng):
        weights, _ = initialize_weights([100, 100], rng, scheme="glorot_uniform")
        limit = np.sqrt(6.0 / 200)
        assert np.abs(weights[0]).max() <= limit + 1e-12

    def test_gaussian_scale(self, rng):
        weights, _ = initialize_weights([200, 200], rng, scheme="gaussian", scale=0.3)
        assert abs(weights[0].std() - 0.3) < 0.02

    def test_unknown_scheme_rejected(self, rng):
        with pytest.raises(ValueError):
            initialize_weights([2, 2], rng, scheme="nope")

    def test_requires_two_layers(self, rng):
        with pytest.raises(ValueError):
            initialize_weights([3], rng)


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(10, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_cross_entropy_gradient_matches_finite_difference(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        _, grad = cross_entropy_loss(logits, labels)
        eps = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus = logits.copy(); plus[i, j] += eps
                minus = logits.copy(); minus[i, j] -= eps
                numeric = (cross_entropy_loss(plus, labels)[0] - cross_entropy_loss(minus, labels)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_mse_gradient_matches_finite_difference(self, rng):
        predictions = rng.normal(size=(5, 1))
        targets = rng.normal(size=5)
        _, grad = mse_loss(predictions, targets)
        eps = 1e-6
        for i in range(5):
            plus = predictions.copy(); plus[i, 0] += eps
            minus = predictions.copy(); minus[i, 0] -= eps
            numeric = (mse_loss(plus, targets)[0] - mse_loss(minus, targets)[0]) / (2 * eps)
            assert grad[i, 0] == pytest.approx(numeric, abs=1e-6)


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=200):
        # Minimize f(x) = ||x - 3||^2 with gradient 2(x - 3).
        params = [np.array([0.0, 0.0])]
        for _ in range(steps):
            grads = [2 * (params[0] - 3.0)]
            optimizer.step(params, grads)
        return params[0]

    def test_sgd_converges_on_quadratic(self):
        final = self._quadratic_descent(SGD(learning_rate=0.1, momentum=0.5))
        np.testing.assert_allclose(final, 3.0, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        final = self._quadratic_descent(Adam(learning_rate=0.1), steps=500)
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        plain = self._quadratic_descent(SGD(learning_rate=0.1))
        decayed = self._quadratic_descent(SGD(learning_rate=0.1, weight_decay=1.0))
        assert np.all(np.abs(decayed) < np.abs(plain))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=-0.1)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(learning_rate=0.1, beta1=1.2)

    def test_explicit_learning_rate_overrides_default(self):
        optimizer = SGD(learning_rate=1.0)
        params = [np.array([0.0])]
        optimizer.step(params, [np.array([1.0])], learning_rate=0.5)
        np.testing.assert_allclose(params[0], [-0.5])


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.1)
        assert schedule(0) == schedule(10) == 0.1

    def test_exponential_decay(self):
        schedule = ExponentialDecaySchedule(0.1, gamma=0.5)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(2) == pytest.approx(0.025)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(0.1, gamma=1.5)(0)
