"""Tests for the normal simulation models (Section 4.2)."""

import numpy as np
import pytest

from repro.simulation.performance_model import (
    DEFAULT_SIMULATED_TASKS,
    SimulatedTask,
    mean_shift_for_probability,
    simulate_biased_measurements,
    simulate_ideal_measurements,
    true_probability_of_outperforming,
)


@pytest.fixture
def task():
    return SimulatedTask(
        name="toy", mean=0.7, sigma=0.02, biased_bias_std=0.01, biased_measurement_std=0.018
    )


class TestSimulatedTask:
    def test_default_tasks_cover_five_case_studies(self):
        assert len(DEFAULT_SIMULATED_TASKS) == 5

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SimulatedTask("x", 0.5, -0.1, 0.0, 0.1)


class TestIdealSimulation:
    def test_sample_statistics(self, task):
        samples = simulate_ideal_measurements(task, 20_000, random_state=0)
        assert abs(samples.mean() - task.mean) < 0.001
        assert abs(samples.std() - task.sigma) < 0.001

    def test_mean_shift_applied(self, task):
        samples = simulate_ideal_measurements(task, 5000, mean_shift=0.05, random_state=0)
        assert abs(samples.mean() - 0.75) < 0.002


class TestBiasedSimulation:
    def test_within_run_std_is_conditional(self, task):
        samples = simulate_biased_measurements(task, 20_000, random_state=0)
        assert abs(samples.std() - task.biased_measurement_std) < 0.001

    def test_bias_varies_across_realizations(self, task):
        means = [
            simulate_biased_measurements(task, 2000, random_state=seed).mean()
            for seed in range(30)
        ]
        # The spread of the means reflects the bias term, which is much
        # larger than the within-run standard error.
        assert np.std(means) > 0.5 * task.biased_bias_std


class TestTrueProbability:
    def test_no_shift_gives_half(self):
        assert true_probability_of_outperforming(0.0, 0.02) == pytest.approx(0.5)

    def test_large_shift_near_one(self):
        assert true_probability_of_outperforming(1.0, 0.02) > 0.999

    def test_roundtrip_with_mean_shift(self):
        sigma = 0.03
        for p in (0.55, 0.75, 0.9):
            shift = mean_shift_for_probability(p, sigma)
            assert true_probability_of_outperforming(shift, sigma) == pytest.approx(p)

    def test_empirical_agreement(self, task, rng):
        shift = mean_shift_for_probability(0.8, task.sigma)
        a = simulate_ideal_measurements(task, 20_000, mean_shift=shift, random_state=rng)
        b = simulate_ideal_measurements(task, 20_000, random_state=rng)
        assert np.mean(a > b) == pytest.approx(0.8, abs=0.01)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            mean_shift_for_probability(1.0, 0.1)
        with pytest.raises(ValueError):
            mean_shift_for_probability(0.7, 0.0)
