"""FileStore garbage collection: byte/entry budgets over the on-disk tree.

Property-tests the budget invariant (never exceeded after any put
sequence, except the always-protected most-recent entry), the
LRU-by-last-use victim order (reads refresh recency), crash recovery
(leftover ``.tmp`` files swept, index consistent), and concurrent writers
sharing one budget — plus the ``MeasurementCache``/``Session`` plumbing
that configures the budgets.
"""

import os
import pickle
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.engine.cache import FileStore, MeasurementCache

#: Pickle overhead of a str payload, so tests can reason in exact bytes.
_BASE = len(pickle.dumps("", protocol=pickle.HIGHEST_PROTOCOL))


def _entry_size(payload: str) -> int:
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def _set_mtime(store: FileStore, key: str, seconds_ago: float) -> None:
    """Pin an entry's last-use time explicitly (mtime is the LRU clock)."""
    when = time.time() - seconds_ago
    os.utime(store._path(key), (when, when))


class TestFileStoreBudgets:
    @settings(max_examples=60, deadline=None)
    @given(
        puts=st.lists(
            st.tuples(
                st.from_regex(r"[a-f0-9]{4,8}", fullmatch=True),
                st.integers(min_value=0, max_value=120),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_byte_budget_never_exceeded_after_any_put_sequence(
        self, tmp_path_factory, puts
    ):
        budget = 3 * (_BASE + 64)
        store = FileStore(
            str(tmp_path_factory.mktemp("store")), max_bytes=budget
        )
        for key, size in puts:
            store.write(key, "x" * size)
            total = store.total_bytes
            # The most recent entry is always kept, so a single oversized
            # write may stand alone above budget; otherwise: bounded.
            assert total <= budget or len(store) == 1, (total, store.keys())

    @settings(max_examples=60, deadline=None)
    @given(
        puts=st.lists(
            st.from_regex(r"[a-f0-9]{4,8}", fullmatch=True),
            min_size=1,
            max_size=12,
        )
    )
    def test_entry_budget_never_exceeded(self, tmp_path_factory, puts):
        store = FileStore(
            str(tmp_path_factory.mktemp("store")), max_entries=3
        )
        for key in puts:
            store.write(key, "payload")
            assert len(store) <= 3

    def test_lru_victim_order(self, tmp_path):
        store = FileStore(str(tmp_path), max_entries=3)
        for key in ("aa11", "bb22", "cc33"):
            store.write(key, key)
        # Pin distinct last-use times: aa11 oldest, cc33 newest.
        _set_mtime(store, "aa11", 300)
        _set_mtime(store, "bb22", 200)
        _set_mtime(store, "cc33", 100)
        store.write("dd44", "dd44")  # exceeds the budget by one
        assert sorted(store.keys()) == ["bb22", "cc33", "dd44"]
        store.write("ee55", "ee55")
        assert sorted(store.keys()) == ["cc33", "dd44", "ee55"]

    def test_read_refreshes_recency(self, tmp_path):
        store = FileStore(str(tmp_path), max_entries=2)
        store.write("aa11", "a")
        store.write("bb22", "b")
        _set_mtime(store, "aa11", 300)
        _set_mtime(store, "bb22", 200)
        assert store.read("aa11") == "a"  # refresh: aa11 now most recent
        store.write("cc33", "c")
        assert sorted(store.keys()) == ["aa11", "cc33"]

    def test_oversized_newest_entry_survives(self, tmp_path):
        store = FileStore(str(tmp_path), max_bytes=8)
        store.write("small", "s")
        store.write("bigbig", "x" * 4096)
        # The oversized write evicted everything else but itself persists.
        assert store.keys() == ["bigbig"]
        assert store.read("bigbig") == "x" * 4096

    def test_invalid_budgets_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FileStore(str(tmp_path), max_bytes=0)
        with pytest.raises(ValueError):
            FileStore(str(tmp_path), max_entries=0)

    def test_unbudgeted_store_never_collects_on_write(self, tmp_path):
        store = FileStore(str(tmp_path))
        for i in range(20):
            store.write(f"k{i:02d}", i)
        assert len(store) == 20
        assert store.removed_entries == 0


class TestExplicitGC:
    def test_gc_with_override_budgets_and_counters(self, tmp_path):
        store = FileStore(str(tmp_path))
        for index, key in enumerate(("aa11", "bb22", "cc33", "dd44")):
            store.write(key, key)
            _set_mtime(store, key, 400 - 100 * index)
        stats = store.gc(max_entries=2)
        assert stats["removed_entries"] == 2
        assert stats["entries"] == 2 and len(store) == 2
        assert stats["removed_bytes"] > 0
        assert sorted(store.keys()) == ["cc33", "dd44"]
        assert store.removed_entries == 2  # lifetime counter
        # prune() is the same API.
        more = store.prune(max_entries=1)
        assert more["removed_entries"] == 1
        assert store.keys() == ["dd44"]

    def test_gc_without_budgets_only_sweeps(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.write("aa11", "a")
        stats = store.gc()
        assert stats["removed_entries"] == 0
        assert stats["entries"] == 1

    def test_crash_leftover_tmps_swept_and_index_consistent(self, tmp_path):
        store = FileStore(str(tmp_path), max_entries=2)
        store.write("aa11", "a")
        store.write("bb22", "b")
        store.write_index()
        # Simulate a crashed writer: stale tmp debris in a shard dir.
        shard = os.path.join(str(tmp_path), "objects", "cc")
        os.makedirs(shard, exist_ok=True)
        stale = os.path.join(shard, "orphan123.tmp")
        with open(stale, "w") as handle:
            handle.write("torn write")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        # A *fresh* tmp (a live writer mid-rename) is left alone.
        fresh = os.path.join(shard, "inflight456.tmp")
        with open(fresh, "w") as handle:
            handle.write("in flight")

        stats = store.gc(max_entries=1)
        assert stats["removed_tmp"] == 1
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)
        # Index was atomically rewritten: it lists exactly the survivors.
        index = store.read_index()
        assert sorted(index["sizes"]) == sorted(store.keys())
        assert index["entries"] == len(store)

    def test_torn_entries_never_resurface_as_reads(self, tmp_path):
        # keys() and read() see only .pkl files; tmp debris is invisible.
        store = FileStore(str(tmp_path))
        store.write("aa11", "a")
        shard = os.path.join(str(tmp_path), "objects", "aa")
        with open(os.path.join(shard, "junk789.tmp"), "w") as handle:
            handle.write("garbage")
        assert store.keys() == ["aa11"]
        assert store.read("aa11") == "a"

    def test_concurrent_writers_share_one_budget(self, tmp_path):
        """Two writers hammering one directory with a shared byte budget:
        no crash, and the surviving tree respects the budget."""
        directory = str(tmp_path / "shared")
        budget = 6 * (_BASE + 64)

        def worker(worker_id):
            store = FileStore(directory, max_bytes=budget)
            for i in range(20):
                store.write(f"{worker_id}{i:02d}aa", "x" * 64)

        threads = [
            threading.Thread(target=worker, args=(f"w{n}",)) for n in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = FileStore(directory, max_bytes=budget)
        assert final.total_bytes <= budget
        # Surviving entries are intact (no torn reads after all that GC).
        for key in final.keys():
            assert final.read(key) == "x" * 64


class TestMeasurementCacheStoreBudgets:
    def test_write_through_prunes_disk_but_memory_still_serves(self, tmp_path):
        cache = MeasurementCache(
            cache_dir=str(tmp_path), max_store_entries=2
        )
        for index in range(5):
            cache.put(f"m{index}key", ("payload", index))
        assert len(cache.store.keys()) <= 2
        # Disk-evicted entries still live in memory (LRU there is separate).
        assert cache.get("m0key") == ("payload", 0)
        assert cache.stats()["store_evictions"] == 3

    def test_disk_evicted_entry_is_a_miss_for_fresh_caches(self, tmp_path):
        writer = MeasurementCache(cache_dir=str(tmp_path), max_store_entries=1)
        writer.put("aa11", "one")
        writer.put("bb22", "two")
        reader = MeasurementCache(cache_dir=str(tmp_path))
        assert reader.get("bb22") == "two"
        assert reader.get("aa11") is None  # pruned from the shared store
        assert reader.misses == 1

    def test_store_budgets_require_cache_dir(self, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            MeasurementCache(max_store_bytes=1024)
        with pytest.raises(ValueError, match="cache_dir"):
            MeasurementCache(str(tmp_path / "c.pkl"), max_store_entries=4)

    def test_session_forwards_store_budgets(self, tmp_path):
        with Session(
            cache_dir=str(tmp_path), max_store_entries=7, max_store_bytes=1 << 20
        ) as session:
            assert session.cache.store.max_entries == 7
            assert session.cache.store.max_bytes == 1 << 20
        with pytest.raises(ValueError, match="externally built"):
            Session(cache=MeasurementCache(), max_store_bytes=1 << 20)

    def test_stats_include_store_evictions(self):
        assert MeasurementCache().stats()["store_evictions"] == 0
