"""Tests for the MLP classifier and regressor pipelines."""

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.hpo.space import SearchSpace
from repro.pipelines.base import fit_and_score
from repro.pipelines.mlp import MLPClassifierPipeline, MLPRegressorPipeline, _clip_hparams
from repro.utils.rng import SeedBundle


class TestMLPClassifierPipeline:
    def test_learns_easy_task(self, blobs_dataset, seed_bundle):
        pipeline = MLPClassifierPipeline(hidden_sizes=(16,), n_epochs=15)
        outcome = pipeline.fit(blobs_dataset, pipeline.default_hparams(), seed_bundle)
        assert outcome.train_score > 0.8

    def test_beats_chance_on_held_out_data(self, seed_bundle):
        train = make_gaussian_blobs(n_samples=300, n_classes=3, class_separation=3.0, random_state=0)
        test = make_gaussian_blobs(n_samples=200, n_classes=3, class_separation=3.0, random_state=0)
        pipeline = MLPClassifierPipeline(hidden_sizes=(16,), n_epochs=15)
        outcome = fit_and_score(pipeline, train, test, None, seed_bundle)
        assert outcome.test_score > 0.6

    def test_reproducible_given_seeds(self, blobs_dataset, seed_bundle):
        pipeline = MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=3)
        a = pipeline.fit(blobs_dataset, None, seed_bundle).train_score
        b = pipeline.fit(blobs_dataset, None, seed_bundle).train_score
        assert a == b

    def test_init_seed_changes_outcome(self, blobs_dataset, seed_bundle, rng):
        pipeline = MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=2)
        a = pipeline.fit(blobs_dataset, None, seed_bundle)
        b = pipeline.fit(blobs_dataset, None, seed_bundle.randomized(["init"], rng))
        assert not np.allclose(a.model.weights[0], b.model.weights[0])

    def test_search_space_contains_paper_dimensions(self):
        space = MLPClassifierPipeline(optimizer="sgd").search_space()
        assert isinstance(space, SearchSpace)
        assert {"learning_rate", "weight_decay", "momentum", "gamma"} <= set(space.names)

    def test_adam_variant_exposes_init_scale(self):
        space = MLPClassifierPipeline(optimizer="adam").search_space()
        assert "init_scale" in space.names
        assert "momentum" not in space.names

    def test_unknown_hyperparameter_rejected(self, blobs_dataset, seed_bundle):
        pipeline = MLPClassifierPipeline(n_epochs=1)
        with pytest.raises(ValueError, match="unknown hyperparameters"):
            pipeline.fit(blobs_dataset, {"not_a_param": 1.0}, seed_bundle)

    def test_invalid_optimizer_rejected(self):
        with pytest.raises(ValueError):
            MLPClassifierPipeline(optimizer="rmsprop")

    def test_history_recorded(self, blobs_dataset, seed_bundle):
        pipeline = MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=4)
        outcome = pipeline.fit(blobs_dataset, None, seed_bundle)
        assert len(outcome.history["losses"]) == 4


class TestClipHparams:
    def test_momentum_and_gamma_clipped(self):
        clipped = _clip_hparams({"momentum": 1.2, "gamma": 1.05})
        assert clipped["momentum"] <= 0.999
        assert clipped["gamma"] <= 1.0

    def test_negative_weight_decay_clipped(self):
        assert _clip_hparams({"weight_decay": -0.1})["weight_decay"] == 0.0

    def test_valid_values_untouched(self):
        params = {"learning_rate": 0.01, "momentum": 0.9, "gamma": 0.97}
        assert _clip_hparams(params) == params


class TestMLPRegressorPipeline:
    def test_fits_regression_task(self, regression_dataset, seed_bundle):
        pipeline = MLPRegressorPipeline(hidden_sizes=(16,), n_epochs=15)
        outcome = pipeline.fit(regression_dataset, None, seed_bundle)
        assert outcome.train_score > 0.0  # better than predicting the mean

    def test_default_metric_is_r2(self):
        assert MLPRegressorPipeline().metric_name == "r2"

    def test_evaluate_uses_metric(self, regression_dataset, seed_bundle):
        pipeline = MLPRegressorPipeline(hidden_sizes=(8,), n_epochs=3)
        outcome = pipeline.fit(regression_dataset, None, seed_bundle)
        score = pipeline.evaluate(outcome.model, regression_dataset)
        assert -1.0 <= score <= 1.0
