"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.pipelines.metrics import (
    accuracy,
    binary_auc,
    error_rate,
    mean_iou,
    pearson_correlation,
    regression_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 1])) == 0.5

    def test_error_rate_complement(self):
        y = np.array([0, 1, 1])
        p = np.array([0, 0, 1])
        assert error_rate(y, p) == pytest.approx(1 - accuracy(y, p))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))


class TestBinaryAUC:
    def test_perfect_separation(self):
        assert binary_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_random_scores_near_half(self, rng):
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert abs(binary_auc(labels, scores) - 0.5) < 0.05

    def test_ties_half_credit(self):
        assert binary_auc(np.array([0, 1]), np.array([0.5, 0.5])) == 0.5

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            binary_auc(np.array([1, 1]), np.array([0.2, 0.4]))


class TestMeanIoU:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 2])
        assert mean_iou(y, y) == 1.0

    def test_partial_overlap(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        # class 0: inter 1, union 2 -> 0.5 ; class 1: inter 2, union 3 -> 2/3
        assert mean_iou(y_true, y_pred) == pytest.approx((0.5 + 2 / 3) / 2)

    def test_absent_class_skipped(self):
        y_true = np.array([0, 0])
        y_pred = np.array([0, 0])
        assert mean_iou(y_true, y_pred, n_classes=5) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_iou(np.array([0]), np.array([0, 1]))


class TestRegressionMetrics:
    def test_pearson_perfect(self):
        x = np.linspace(0, 1, 20)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_pearson_constant_prediction_zero(self):
        assert pearson_correlation(np.arange(5.0), np.ones(5)) == 0.0

    def test_r2_perfect(self):
        x = np.linspace(0, 1, 10)
        assert regression_score(x, x) == 1.0

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert regression_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_clipped_below(self):
        y = np.array([0.0, 1.0])
        assert regression_score(y, np.array([100.0, -100.0])) == -1.0
