"""Tests for percentile-bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.stats.bootstrap import BootstrapCI, bootstrap_distribution, percentile_bootstrap_ci


class TestBootstrapDistribution:
    def test_length_matches_n_bootstraps(self, rng):
        values = rng.normal(size=30)
        dist = bootstrap_distribution(values, np.mean, n_bootstraps=200, random_state=0)
        assert dist.shape == (200,)

    def test_reproducible_with_seed(self, rng):
        values = rng.normal(size=30)
        a = bootstrap_distribution(values, np.mean, n_bootstraps=50, random_state=3)
        b = bootstrap_distribution(values, np.mean, n_bootstraps=50, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_centered_near_sample_mean(self, rng):
        values = rng.normal(loc=5.0, size=200)
        dist = bootstrap_distribution(values, np.mean, n_bootstraps=500, random_state=0)
        assert abs(np.mean(dist) - np.mean(values)) < 0.1

    def test_paired_requires_same_length(self):
        with pytest.raises(ValueError, match="same length"):
            bootstrap_distribution(np.ones(5), np.mean, paired=np.ones(4))

    def test_paired_statistic_receives_pairs(self, rng):
        a = rng.normal(size=20)
        b = a + 1.0
        dist = bootstrap_distribution(
            a, lambda pairs: np.mean(pairs[:, 1] - pairs[:, 0]), paired=b,
            n_bootstraps=50, random_state=0,
        )
        np.testing.assert_allclose(dist, 1.0)


class TestVectorizedFastPath:
    def test_vectorized_matches_loop_bitwise(self, rng):
        # The resample indices are drawn in one call, so both paths must
        # produce exactly the same distribution.
        values = rng.normal(size=40)
        vectorized_mean = lambda x: np.mean(x, axis=-1)  # noqa: E731
        loop = bootstrap_distribution(
            values, vectorized_mean, n_bootstraps=100, random_state=5, vectorized=False
        )
        fast = bootstrap_distribution(
            values, vectorized_mean, n_bootstraps=100, random_state=5, vectorized=True
        )
        auto = bootstrap_distribution(
            values, vectorized_mean, n_bootstraps=100, random_state=5
        )
        np.testing.assert_array_equal(loop, fast)
        np.testing.assert_array_equal(loop, auto)

    def test_scalar_statistic_falls_back_to_loop(self, rng):
        # np.mean collapses the whole batch to a scalar; auto-detection must
        # reject the batched result and fall back without changing values.
        values = rng.normal(size=25)
        auto = bootstrap_distribution(values, np.mean, n_bootstraps=60, random_state=1)
        loop = bootstrap_distribution(
            values, np.mean, n_bootstraps=60, random_state=1, vectorized=False
        )
        np.testing.assert_array_equal(auto, loop)

    def test_vectorized_true_rejects_scalar_statistic(self, rng):
        with pytest.raises(ValueError, match="vectorized"):
            bootstrap_distribution(
                rng.normal(size=10), np.mean, n_bootstraps=20, vectorized=True
            )

    def test_paired_vectorized_statistic(self, rng):
        a = rng.normal(size=30)
        b = a + rng.normal(0.5, 0.1, size=30)

        def gap(pairs):
            return np.mean(pairs[..., 1] - pairs[..., 0], axis=-1)

        fast = bootstrap_distribution(
            a, gap, paired=b, n_bootstraps=80, random_state=2, vectorized=True
        )
        loop = bootstrap_distribution(
            a, gap, paired=b, n_bootstraps=80, random_state=2, vectorized=False
        )
        np.testing.assert_array_equal(fast, loop)

    def test_raising_statistic_on_batch_falls_back(self, rng):
        def strict(resample):
            if resample.ndim != 1:
                raise ValueError("rows only")
            return float(np.median(resample))

        dist = bootstrap_distribution(
            rng.normal(size=15), strict, n_bootstraps=30, random_state=4
        )
        assert dist.shape == (30,)


class TestPercentileBootstrapCI:
    def test_interval_contains_point_estimate_for_mean(self, rng):
        values = rng.normal(size=100)
        ci = percentile_bootstrap_ci(values, np.mean, random_state=0)
        assert ci.low <= ci.estimate <= ci.high

    def test_width_shrinks_with_sample_size(self, rng):
        small = percentile_bootstrap_ci(rng.normal(size=20), np.mean, random_state=0)
        large = percentile_bootstrap_ci(rng.normal(size=2000), np.mean, random_state=0)
        assert large.width < small.width

    def test_alpha_widens_interval(self, rng):
        values = rng.normal(size=50)
        narrow = percentile_bootstrap_ci(values, np.mean, alpha=0.5, random_state=0)
        wide = percentile_bootstrap_ci(values, np.mean, alpha=0.01, random_state=0)
        assert wide.width >= narrow.width

    def test_contains(self):
        ci = BootstrapCI(estimate=0.5, low=0.4, high=0.6, alpha=0.05, n_bootstraps=10)
        assert ci.contains(0.5)
        assert not ci.contains(0.7)

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            percentile_bootstrap_ci(rng.normal(size=10), np.mean, alpha=1.5)

    def test_coverage_of_true_mean(self):
        # Frequentist sanity check: ~95% CIs should cover the true mean most
        # of the time (allowing wide slack for a small number of repetitions).
        covered = 0
        master = np.random.default_rng(0)
        for _ in range(40):
            sample = master.normal(loc=2.0, size=60)
            ci = percentile_bootstrap_ci(sample, np.mean, random_state=master, n_bootstraps=300)
            covered += ci.low <= 2.0 <= ci.high
        assert covered >= 30
