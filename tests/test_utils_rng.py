"""Tests for seed derivation, SeedScope and SeedBundle behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    KNOWN_SOURCES,
    SeedBundle,
    SeedScope,
    SeedSequencePool,
    derive_seed,
    rng_from_seed,
    spawn_generators,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "data") == derive_seed(0, "data")

    def test_different_keys_differ(self):
        assert derive_seed(0, "data") != derive_seed(0, "init")

    def test_different_base_differ(self):
        assert derive_seed(0, "data") != derive_seed(1, "data")

    def test_in_range(self):
        seed = derive_seed(42, "x", 3)
        assert 0 <= seed < 2**32


class TestRngFromSeed:
    def test_reproducible(self):
        a = rng_from_seed(7).random(5)
        b = rng_from_seed(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4

    def test_streams_independent(self):
        gens = spawn_generators(0, 2)
        assert not np.allclose(gens[0].random(10), gens[1].random(10))

    def test_reproducible(self):
        a = spawn_generators(3, 2)[1].random(4)
        b = spawn_generators(3, 2)[1].random(4)
        np.testing.assert_array_equal(a, b)


class TestSeedBundle:
    def test_seed_for_default_derivation(self):
        bundle = SeedBundle(base_seed=5)
        assert bundle.seed_for("data") == derive_seed(5, "data")

    def test_explicit_seed_wins(self):
        bundle = SeedBundle(base_seed=5, seeds={"data": 99})
        assert bundle.seed_for("data") == 99

    def test_with_seeds_does_not_mutate(self):
        bundle = SeedBundle(base_seed=0)
        updated = bundle.with_seeds(init=3)
        assert updated.seed_for("init") == 3
        assert bundle.seed_for("init") != 3 or bundle.seed_for("init") == derive_seed(0, "init")

    def test_randomized_changes_only_requested(self, rng):
        bundle = SeedBundle(base_seed=0)
        updated = bundle.randomized(["init"], rng)
        assert updated.seed_for("data") == bundle.seed_for("data")
        assert updated.seed_for("init") != bundle.seed_for("init")

    def test_rng_for_reproducible(self):
        bundle = SeedBundle(base_seed=1)
        np.testing.assert_array_equal(
            bundle.rng_for("order").random(3), bundle.rng_for("order").random(3)
        )

    def test_as_dict_covers_known_sources(self):
        bundle = SeedBundle(base_seed=2)
        assert set(bundle.as_dict()) == set(KNOWN_SOURCES)

    def test_random_bundle_sets_all_sources(self, rng):
        bundle = SeedBundle.random(rng)
        assert set(bundle.seeds) == set(KNOWN_SOURCES)


_segment = st.tuples(st.text(min_size=1, max_size=8), st.text(max_size=8))
_paths = st.lists(_segment, min_size=0, max_size=4)


def _scope_at(root: "SeedScope", path) -> "SeedScope":
    for kind, name in path:
        root = root.child(kind, name)
    return root


class TestSeedScope:
    def test_pure_function_of_path(self):
        a = SeedScope.from_state(0).child("task", "entailment").child("rep", 3)
        b = SeedScope.from_state(0).child("task", "entailment").child("rep", 3)
        assert a.seed() == b.seed()
        assert a == b

    def test_order_independent(self):
        """A scope's seed never depends on which siblings were derived first.

        This is the property stream-based seeding lacks: under streams, the
        second task's seeds depend on how many draws the first consumed.
        """
        root = SeedScope.from_state(7)
        forward = [root.child("task", name).seed() for name in ("a", "b", "c")]
        backward = [root.child("task", name).seed() for name in ("c", "b", "a")]
        assert forward == backward[::-1]
        # Deriving unrelated scopes in between changes nothing either.
        root.child("other", "x").child("rep", 0).seed()
        assert root.child("task", "b").seed() == forward[1]

    def test_roots_differ(self):
        assert (
            SeedScope.from_state(0).child("a").seed()
            != SeedScope.from_state(1).child("a").seed()
        )

    def test_path_encoding_unambiguous(self):
        root = SeedScope.from_state(0)
        assert root.child("a", "b=c").seed() != root.child("a=b", "c").seed()
        assert root.child("a").child("b").seed() != root.child("a", "b").seed()
        assert root.child("a", "1/2").seed() != root.child("a", "1").child("2").seed()

    def test_from_state_passthrough_and_generator(self):
        scope = SeedScope.from_state(3)
        assert SeedScope.from_state(scope) is scope
        gen_scope = SeedScope.from_state(np.random.default_rng(3))
        assert gen_scope == SeedScope.from_state(np.random.default_rng(3))
        assert isinstance(SeedScope.from_state(None), SeedScope)

    def test_bundle_is_scope_derived(self):
        scope = SeedScope.from_state(5).child("task", "t")
        bundle = scope.bundle()
        assert set(bundle.seeds) == set(KNOWN_SOURCES)
        assert bundle.base_seed == scope.seed()
        assert bundle.seeds["data"] == scope.child("source", "data").seed()
        assert bundle == scope.bundle()

    def test_path_str_human_readable(self):
        scope = SeedScope.from_state(0).child("task", "entailment").child("rep", 3)
        assert scope.path_str() == "task=entailment/rep=3"

    @settings(max_examples=200, deadline=None)
    @given(path_a=_paths, path_b=_paths)
    def test_property_distinct_paths_distinct_seeds(self, path_a, path_b):
        """Collision check: distinct paths address distinct seeds."""
        root = SeedScope.from_state(42)
        a, b = _scope_at(root, path_a), _scope_at(root, path_b)
        if path_a == path_b:
            assert a.seed() == b.seed()
        else:
            assert a.seed() != b.seed()

    @settings(max_examples=100, deadline=None)
    @given(path=_paths, extra=_paths)
    def test_property_derivation_is_stateless(self, path, extra):
        """Order independence: deriving other scopes never perturbs a path."""
        root = SeedScope.from_state(9)
        before = _scope_at(root, path).seed()
        for kind, name in extra:
            root.child(kind, name).seed()  # unrelated derivations
        assert _scope_at(root, path).seed() == before


class TestSeedSequencePool:
    def test_issued_seeds_unchanged_by_constant_time_rewrite(self):
        """Regression: the O(1) next_seed must reproduce the historical
        sequence, which respawned all children on every draw."""

        class _QuadraticReference:
            def __init__(self, root_seed):
                self._root = np.random.SeedSequence(root_seed)
                self._count = 0

            def next_seed(self):
                child = self._root.spawn(self._count + 1)[self._count]
                self._count += 1
                return int(child.generate_state(1, dtype=np.uint32)[0])

        for root in (0, 1, 2**31):
            reference = _QuadraticReference(root % (2**32 - 1))
            pool = SeedSequencePool(root)
            assert [pool.next_seed() for _ in range(40)] == [
                reference.next_seed() for _ in range(40)
            ]

    def test_seeds_unique(self):
        pool = SeedSequencePool(0)
        seeds = [pool.next_seed() for _ in range(20)]
        assert len(set(seeds)) == 20

    def test_reproducible_across_pools(self):
        assert [SeedSequencePool(1).next_seed() for _ in range(1)] == [
            SeedSequencePool(1).next_seed() for _ in range(1)
        ]

    def test_issued_counter(self):
        pool = SeedSequencePool(0)
        pool.next_seed()
        pool.next_bundle()
        pool.next_rng()
        assert pool.issued == 3
