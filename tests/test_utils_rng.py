"""Tests for seed derivation and SeedBundle behaviour."""

import numpy as np
import pytest

from repro.utils.rng import (
    KNOWN_SOURCES,
    SeedBundle,
    SeedSequencePool,
    derive_seed,
    rng_from_seed,
    spawn_generators,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "data") == derive_seed(0, "data")

    def test_different_keys_differ(self):
        assert derive_seed(0, "data") != derive_seed(0, "init")

    def test_different_base_differ(self):
        assert derive_seed(0, "data") != derive_seed(1, "data")

    def test_in_range(self):
        seed = derive_seed(42, "x", 3)
        assert 0 <= seed < 2**32


class TestRngFromSeed:
    def test_reproducible(self):
        a = rng_from_seed(7).random(5)
        b = rng_from_seed(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4

    def test_streams_independent(self):
        gens = spawn_generators(0, 2)
        assert not np.allclose(gens[0].random(10), gens[1].random(10))

    def test_reproducible(self):
        a = spawn_generators(3, 2)[1].random(4)
        b = spawn_generators(3, 2)[1].random(4)
        np.testing.assert_array_equal(a, b)


class TestSeedBundle:
    def test_seed_for_default_derivation(self):
        bundle = SeedBundle(base_seed=5)
        assert bundle.seed_for("data") == derive_seed(5, "data")

    def test_explicit_seed_wins(self):
        bundle = SeedBundle(base_seed=5, seeds={"data": 99})
        assert bundle.seed_for("data") == 99

    def test_with_seeds_does_not_mutate(self):
        bundle = SeedBundle(base_seed=0)
        updated = bundle.with_seeds(init=3)
        assert updated.seed_for("init") == 3
        assert bundle.seed_for("init") != 3 or bundle.seed_for("init") == derive_seed(0, "init")

    def test_randomized_changes_only_requested(self, rng):
        bundle = SeedBundle(base_seed=0)
        updated = bundle.randomized(["init"], rng)
        assert updated.seed_for("data") == bundle.seed_for("data")
        assert updated.seed_for("init") != bundle.seed_for("init")

    def test_rng_for_reproducible(self):
        bundle = SeedBundle(base_seed=1)
        np.testing.assert_array_equal(
            bundle.rng_for("order").random(3), bundle.rng_for("order").random(3)
        )

    def test_as_dict_covers_known_sources(self):
        bundle = SeedBundle(base_seed=2)
        assert set(bundle.as_dict()) == set(KNOWN_SOURCES)

    def test_random_bundle_sets_all_sources(self, rng):
        bundle = SeedBundle.random(rng)
        assert set(bundle.seeds) == set(KNOWN_SOURCES)


class TestSeedSequencePool:
    def test_seeds_unique(self):
        pool = SeedSequencePool(0)
        seeds = [pool.next_seed() for _ in range(20)]
        assert len(set(seeds)) == 20

    def test_reproducible_across_pools(self):
        assert [SeedSequencePool(1).next_seed() for _ in range(1)] == [
            SeedSequencePool(1).next_seed() for _ in range(1)
        ]

    def test_issued_counter(self):
        pool = SeedSequencePool(0)
        pool.next_seed()
        pool.next_bundle()
        pool.next_rng()
        assert pool.issued == 3
