"""Tests for the detection-rate experiments (Figures 6 and I.6)."""

import numpy as np
import pytest

from repro.core.comparison import AverageComparison, ProbabilityOfOutperforming, SinglePointComparison
from repro.simulation.detection import (
    detection_rate,
    detection_rate_curve,
    robustness_to_sample_size,
    robustness_to_threshold,
)
from repro.simulation.oracle import OracleComparison
from repro.simulation.performance_model import SimulatedTask


@pytest.fixture
def task():
    return SimulatedTask(
        name="toy", mean=0.7, sigma=0.02, biased_bias_std=0.01, biased_measurement_std=0.018
    )


class TestOracle:
    def test_step_at_gamma(self):
        oracle = OracleComparison(gamma=0.75)
        assert not oracle.decide(0.74)
        assert oracle.decide(0.76)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            OracleComparison().decide(1.3)


class TestDetectionRate:
    def test_probability_criterion_low_false_positive_rate(self, task):
        method = ProbabilityOfOutperforming(n_bootstraps=100)
        rate = detection_rate(method, task, 0.5, k=30, n_simulations=40, random_state=0)
        assert rate <= 0.15

    def test_probability_criterion_high_power_for_large_effect(self, task):
        method = ProbabilityOfOutperforming(n_bootstraps=100)
        rate = detection_rate(method, task, 0.99, k=30, n_simulations=30, random_state=0)
        assert rate >= 0.8

    def test_average_criterion_conservative(self, task):
        # With delta calibrated to published improvements (~2 sigma), an
        # improvement at P(A>B)=0.8 is mostly missed — Figure 6's orange line.
        method = AverageComparison.from_sigma(task.sigma)
        rate = detection_rate(method, task, 0.8, k=50, n_simulations=40, random_state=0)
        assert rate <= 0.5

    def test_single_point_unreliable(self, task):
        method = SinglePointComparison(delta=1.9952 * task.sigma)
        fp = detection_rate(method, task, 0.5, k=1, n_simulations=200, random_state=0)
        power = detection_rate(method, task, 0.95, k=1, n_simulations=200, random_state=0)
        # Non-zero false positives and far-from-perfect power, unlike the
        # probability-of-outperforming criterion.
        assert fp > 0.0
        assert power < 0.9

    def test_invalid_estimator_name(self, task):
        with pytest.raises(ValueError):
            detection_rate(
                AverageComparison(), task, 0.6, estimator="exact", n_simulations=2
            )


class TestDetectionRateCurve:
    def test_monotone_trend(self, task):
        method = ProbabilityOfOutperforming(n_bootstraps=100)
        curve = detection_rate_curve(
            method, task, (0.5, 0.9, 0.99), k=30, n_simulations=30, random_state=0
        )
        assert curve.rates[0] < curve.rates[-1]
        assert curve.method == "probability_of_outperforming"

    def test_rows_structure(self, task):
        curve = detection_rate_curve(
            AverageComparison(), task, (0.5, 0.8), k=10, n_simulations=5, random_state=0
        )
        rows = curve.as_rows()
        assert len(rows) == 2
        assert {"method", "estimator", "p_a_gt_b", "detection_rate"} <= set(rows[0])

    def test_biased_estimator_also_works(self, task):
        curve = detection_rate_curve(
            ProbabilityOfOutperforming(n_bootstraps=50),
            task,
            (0.5, 0.95),
            k=20,
            estimator="biased",
            n_simulations=20,
            random_state=0,
        )
        assert 0.0 <= curve.rates[0] <= 1.0


class TestRobustness:
    def test_power_increases_with_sample_size(self, task):
        rates = robustness_to_sample_size(
            {"prob": ProbabilityOfOutperforming(n_bootstraps=100)},
            task,
            sample_sizes=(5, 60),
            p_a_gt_b=0.9,
            n_simulations=30,
            random_state=0,
        )
        assert rates["prob"][1] >= rates["prob"][0]

    def test_detection_decreases_with_stricter_threshold(self, task):
        rates = robustness_to_threshold(
            lambda gamma: ProbabilityOfOutperforming(gamma=gamma, n_bootstraps=100),
            task,
            thresholds=(0.6, 0.95),
            p_a_gt_b=0.75,
            k=30,
            n_simulations=30,
            random_state=0,
        )
        assert rates[0.95] <= rates[0.6]
