"""Integration tests for the experiment layer (one per paper artefact).

These run every experiment at its smallest sensible size to check the
plumbing end to end; the benchmark harness runs them at larger sizes.
"""

import numpy as np
import pytest

from repro.experiments import (
    run_binomial_study,
    run_detection_study,
    run_estimator_study,
    run_hpo_curves_study,
    run_mhc_model_comparison,
    run_normality_study,
    run_robustness_study,
    run_sample_size_study,
    run_sota_study,
    run_variance_study,
)


class TestVarianceStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_variance_study(
            ["entailment"],
            n_seeds=6,
            n_hpo_repetitions=2,
            hpo_budget=3,
            dataset_size=250,
            random_state=0,
        )

    def test_all_sources_reported(self, result):
        stds = result.decompositions["entailment"].stds
        assert {"data", "order", "init", "dropout", "numerical"} <= set(stds)

    def test_hpo_algorithms_reported(self, result):
        assert set(result.hpo_stds["entailment"]) == {
            "random_search",
            "noisy_grid_search",
            "bayesopt",
        }

    def test_data_variance_dominates_numerical_noise(self, result):
        stds = result.decompositions["entailment"].stds
        assert stds["data"] >= stds["numerical"]

    def test_rows_and_report(self, result):
        rows = result.rows()
        assert any(row["source"].startswith("hopt/") for row in rows)
        assert "Figure 1" in result.report()


class TestBinomialStudy:
    def test_observed_std_same_order_as_binomial_model(self):
        result = run_binomial_study(["entailment"], n_splits=8, random_state=0)
        row = result.rows()[0]
        assert 0.3 < row["ratio_observed_over_binomial"] < 3.0

    def test_curves_tabulated(self):
        result = run_binomial_study(["sentiment"], n_splits=4, random_state=0)
        curve = result.curves["sentiment"]
        assert np.all(np.diff(curve["binomial_std"]) < 0)

    def test_regression_tasks_skipped(self):
        result = run_binomial_study(["peptide-binding"], n_splits=3, random_state=0)
        assert result.rows() == []


class TestSotaStudy:
    def test_default_run(self):
        result = run_sota_study()
        assert set(result.timelines) == {"cifar10", "sst2"}
        assert 0.0 <= result.fraction_significant("cifar10") <= 1.0

    def test_large_sigma_suppresses_significance(self):
        result = run_sota_study(sigmas={"cifar10": 0.2})
        assert result.fraction_significant("cifar10") == 0.0

    def test_report_mentions_figure(self):
        assert "Figure 3" in run_sota_study().report()


class TestEstimatorStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_estimator_study(
            ["entailment"],
            k_max=4,
            n_repetitions=2,
            hpo_budget=3,
            dataset_size=250,
            random_state=0,
        )

    def test_all_estimators_present(self, result):
        names = {row["estimator"] for row in result.standard_error_rows()}
        assert names == {
            "IdealEst",
            "FixHOptEst(init)",
            "FixHOptEst(data)",
            "FixHOptEst(all)",
        }

    def test_mse_rows_finite(self, result):
        assert all(np.isfinite(row["mse"]) for row in result.mse_rows())

    def test_cost_rows_reflect_51x_scale(self, result):
        rows = {row["estimator"]: row["model_fits"] for row in result.cost_rows(k=100)}
        assert rows["IdealEst"] > rows["FixHOptEst"]
        assert rows["ratio"] == pytest.approx(rows["IdealEst"] / rows["FixHOptEst"])


class TestDetectionStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_detection_study(
            probabilities=(0.4, 0.5, 0.9, 0.99),
            k=20,
            n_simulations=20,
            random_state=0,
        )

    def test_oracle_is_step_function(self, result):
        assert result.oracle_rates.tolist() == [0.0, 0.0, 1.0, 1.0]

    def test_curves_for_both_estimators(self, result):
        estimators = {c.estimator for c in result.curves}
        assert estimators == {"ideal", "biased"}

    def test_probability_criterion_beats_average_on_power(self, result):
        prob_fn = result.false_negative_rate("probability_of_outperforming", "ideal")
        avg_fn = result.false_negative_rate("average", "ideal")
        assert prob_fn <= avg_fn

    def test_report_contains_rows(self, result):
        assert "oracle" in result.report()


class TestRobustnessStudy:
    def test_structure(self):
        result = run_robustness_study(
            sample_sizes=(5, 20), thresholds=(0.7, 0.9), k=20, n_simulations=15, random_state=0
        )
        assert set(result.by_sample_size) == {
            "average",
            "probability_of_outperforming",
            "t_test_like_average",
        }
        assert set(result.by_threshold) == {"probability_of_outperforming", "average"}
        rows = result.rows()
        assert any(row["sweep"] == "threshold" for row in rows)


class TestSampleSizeStudy:
    def test_recommended_29(self):
        assert run_sample_size_study().recommended_sample_size == 29

    def test_monotone_rows(self):
        result = run_sample_size_study(gammas=(0.6, 0.75, 0.9))
        sizes = [row["min_sample_size"] for row in result.rows()]
        assert sizes == sorted(sizes, reverse=True)

    def test_recommended_flagged(self):
        rows = run_sample_size_study(gammas=(0.7, 0.75)).rows()
        assert any(row["recommended"] for row in rows)


class TestHpoCurvesStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_hpo_curves_study(
            ["entailment"], budget=4, n_repetitions=2, dataset_size=250, random_state=0
        )

    def test_curves_shape(self, result):
        matrix = result.curves["entailment"]["random_search"]
        assert matrix.shape == (2, 4)

    def test_curves_monotone_non_increasing(self, result):
        for matrix in result.curves["entailment"].values():
            assert np.all(np.diff(matrix, axis=1) <= 1e-12)

    def test_final_std_finite(self, result):
        assert np.isfinite(result.final_std("entailment", "bayesopt"))

    def test_rows_cover_all_algorithms(self, result):
        algorithms = {row["algorithm"] for row in result.rows()}
        assert algorithms == {"random_search", "noisy_grid_search", "bayesopt"}


class TestNormalityStudy:
    def test_reports_per_source(self):
        result = run_normality_study(
            ["entailment"], n_seeds=6, dataset_size=250, random_state=0
        )
        assert "altogether" in result.reports["entailment"]
        assert 0.0 <= result.fraction_consistent_with_normal() <= 1.0
        assert "Figure G.3" in result.report()


class TestMHCComparison:
    def test_rows_and_comparison(self):
        result = run_mhc_model_comparison(n_samples=300, k_pairs=5, random_state=0)
        assert len(result.model_rows) == 2
        assert result.comparison is not None
        assert "Table 8" in result.report()
