"""Tests for label and sequence encodings."""

import numpy as np
import pytest

from repro.data.encoding import one_hot_encode_labels, one_hot_encode_sequences


class TestOneHotLabels:
    def test_basic_encoding(self):
        encoded = one_hot_encode_labels(np.array([0, 2, 1]), n_classes=3)
        expected = np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
        np.testing.assert_array_equal(encoded, expected)

    def test_infers_n_classes(self):
        assert one_hot_encode_labels(np.array([0, 3])).shape == (2, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot_encode_labels(np.array([0, 5]), n_classes=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot_encode_labels(np.zeros((2, 2)))


class TestOneHotSequences:
    def test_shape_and_content(self):
        encoded = one_hot_encode_sequences(["AC", "CA"], alphabet="AC")
        assert encoded.shape == (2, 4)
        np.testing.assert_array_equal(encoded[0], [1, 0, 0, 1])
        np.testing.assert_array_equal(encoded[1], [0, 1, 1, 0])

    def test_rejects_ragged_sequences(self):
        with pytest.raises(ValueError):
            one_hot_encode_sequences(["AB", "A"], alphabet="AB")

    def test_rejects_unknown_symbol(self):
        with pytest.raises(ValueError):
            one_hot_encode_sequences(["AZ"], alphabet="AB")

    def test_empty_input(self):
        assert one_hot_encode_sequences([], alphabet="AB").shape == (0, 0)
