"""Tests for Equation 7 and the MSE decomposition."""

import numpy as np
import pytest

from repro.stats.correlated import (
    average_pairwise_correlation,
    correlated_mean_variance,
    mse_decomposition,
    standard_error_of_std,
)


class TestCorrelatedMeanVariance:
    def test_independent_measurements(self):
        # rho = 0 recovers sigma^2 / k.
        assert correlated_mean_variance(4.0, 4, 0.0) == pytest.approx(1.0)

    def test_fully_correlated_measurements(self):
        # rho = 1 means averaging does not help at all.
        assert correlated_mean_variance(4.0, 10, 1.0) == pytest.approx(4.0)

    def test_k_one_is_variance(self):
        assert correlated_mean_variance(2.5, 1, 0.7) == pytest.approx(2.5)

    def test_monotone_in_rho(self):
        low = correlated_mean_variance(1.0, 20, 0.1)
        high = correlated_mean_variance(1.0, 20, 0.9)
        assert high > low

    def test_large_k_limit_is_rho_variance(self):
        assert correlated_mean_variance(3.0, 10_000, 0.4) == pytest.approx(1.2, rel=1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            correlated_mean_variance(-1.0, 5, 0.0)
        with pytest.raises(ValueError):
            correlated_mean_variance(1.0, 5, 2.0)


class TestAveragePairwiseCorrelation:
    def test_uncorrelated_columns_near_zero(self, rng):
        samples = rng.normal(size=(500, 4))
        assert abs(average_pairwise_correlation(samples)) < 0.1

    def test_shared_component_high_correlation(self, rng):
        shared = rng.normal(size=(300, 1))
        samples = shared + 0.1 * rng.normal(size=(300, 5))
        assert average_pairwise_correlation(samples) > 0.8

    def test_degenerate_inputs_return_zero(self):
        assert average_pairwise_correlation(np.ones((5, 3))) == 0.0
        assert average_pairwise_correlation(np.zeros((1, 3))) == 0.0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            average_pairwise_correlation(np.ones(5))


class TestStandardErrorOfStd:
    def test_formula(self):
        assert standard_error_of_std(2.0, 9) == pytest.approx(2.0 / np.sqrt(16))

    def test_decreases_with_k(self):
        assert standard_error_of_std(1.0, 100) < standard_error_of_std(1.0, 10)

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            standard_error_of_std(1.0, 1)


class TestMSEDecomposition:
    def test_unbiased_estimator(self, rng):
        realizations = rng.normal(loc=0.0, scale=0.1, size=500)
        decomposition = mse_decomposition(realizations, true_value=0.0)
        assert abs(decomposition.bias) < 0.02
        assert decomposition.variance == pytest.approx(0.01, rel=0.3)

    def test_biased_estimator(self):
        realizations = np.full(10, 1.5)
        decomposition = mse_decomposition(realizations, true_value=1.0)
        assert decomposition.bias == pytest.approx(0.5)
        assert decomposition.variance == 0.0
        assert decomposition.mse == pytest.approx(0.25)

    def test_correlation_passthrough(self, rng):
        shared = rng.normal(size=(100, 1))
        measurements = shared + 0.01 * rng.normal(size=(100, 5))
        decomposition = mse_decomposition(
            measurements.mean(axis=1), true_value=0.0, measurements=measurements
        )
        assert decomposition.correlation > 0.9
