"""Tests for the unified Study API (repro.api).

Covers the three layers of the front door:

* ``StudySpec`` — validation and the JSON round-trip (property-tested);
* the registry — completeness over the experiment layer and metadata
  integrity (smoke params must be valid driver kwargs);
* ``Session`` — every registered study runs at tiny scale, is
  bitwise-identical at ``n_jobs=1`` vs ``n_jobs=2``, shares one warm
  cache across runs, and streams shard results through ``submit``.
"""

import json
import threading
from concurrent.futures import CancelledError, ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments as experiments
from repro.api import Session, StudySpec, get_study, iter_studies, list_studies
from repro.api.registry import ENGINE_PARAMS
from repro.api.results import StudyResult
from repro.api.session import StudyHandle
from repro.engine import MeasurementCache, StudyCancelled

#: Studies whose smoke-scale run is fast enough for the equivalence matrix.
ALL_STUDIES = list_studies()


# ----------------------------------------------------------------------
# StudySpec
# ----------------------------------------------------------------------
_param_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)

_specs = st.builds(
    StudySpec,
    study=st.sampled_from(ALL_STUDIES),
    params=st.dictionaries(
        st.text(min_size=1, max_size=16), _param_values, max_size=4
    ),
    n_jobs=st.none() | st.integers(min_value=-1, max_value=8),
    backend=st.none() | st.sampled_from(["serial", "thread", "process"]),
    cache=st.booleans() | st.text(min_size=1, max_size=20),
    random_state=st.none() | st.integers(min_value=0, max_value=2**31),
)


class TestStudySpec:
    @settings(max_examples=200, deadline=None)
    @given(spec=_specs)
    def test_json_round_trip_property(self, spec):
        assert StudySpec.from_json(spec.to_json()) == spec
        assert StudySpec.from_dict(spec.to_dict()) == spec
        # to_json output is valid, self-contained JSON.
        assert json.loads(spec.to_json())["study"] == spec.study

    def test_tuples_normalize_to_lists(self):
        spec = StudySpec(study="variance", params={"task_names": ("entailment",)})
        assert spec.params["task_names"] == ["entailment"]
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_invalid_study_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(study="")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(study="variance", backend="mpi")

    def test_non_serializable_param_rejected(self):
        with pytest.raises(TypeError):
            StudySpec(study="variance", params={"rng": object()})

    def test_generator_random_state_rejected(self):
        import numpy as np

        with pytest.raises(TypeError):
            StudySpec(study="variance", random_state=np.random.default_rng(0))

    def test_unknown_field_rejected_in_from_dict(self):
        with pytest.raises(ValueError, match="unknown StudySpec fields"):
            StudySpec.from_dict({"study": "variance", "jobs": 2})

    def test_replace_and_with_params(self):
        spec = StudySpec(study="variance", params={"n_seeds": 5})
        assert spec.replace(n_jobs=4).n_jobs == 4
        assert spec.with_params(n_seeds=9).params["n_seeds"] == 9
        assert spec.params["n_seeds"] == 5  # original untouched

    def test_specs_are_hashable_and_immutable(self):
        a = StudySpec(study="variance", params={"task_names": ["entailment"]})
        b = StudySpec(study="variance", params={"task_names": ("entailment",)})
        c = a.replace(n_jobs=4)
        assert a == b and hash(a) == hash(b)
        assert len({a, b, c}) == 2  # equal specs dedupe in a set
        with pytest.raises(TypeError):
            a.params["task_names"] = ["sentiment"]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_experiment_driver_is_registered(self):
        registered = {info.func for info in iter_studies()}
        drivers = {
            getattr(experiments, name)
            for name in experiments.__all__
            if name.startswith("run_")
        }
        missing = {fn.__name__ for fn in drivers - registered}
        assert not missing, f"unregistered experiment drivers: {sorted(missing)}"

    def test_ten_studies_registered(self):
        assert len(ALL_STUDIES) >= 10

    def test_unknown_study_lists_alternatives(self):
        with pytest.raises(KeyError, match="registered studies"):
            get_study("not-a-study")

    def test_metadata_complete(self):
        for info in iter_studies():
            assert info.artefact, info.name
            assert info.description, info.name
            # Smoke params must be real driver kwargs.
            info.validate_params(info.smoke_params)

    def test_every_driver_accepts_engine_params(self):
        for info in iter_studies():
            valid = info.valid_params()
            for knob in ENGINE_PARAMS:
                assert knob in valid, (info.name, knob)

    def test_engine_knobs_rejected_inside_params(self):
        info = get_study("variance")
        with pytest.raises(ValueError, match="StudySpec fields"):
            info.validate_params({"n_jobs": 4})

    def test_unknown_param_rejected_with_valid_list(self):
        info = get_study("variance")
        with pytest.raises(ValueError, match="valid parameters"):
            info.validate_params({"n_seedz": 4})


# ----------------------------------------------------------------------
# Session.run: every registered study, parallel == serial
# ----------------------------------------------------------------------
def _smoke_spec(name: str, *, n_jobs: int) -> StudySpec:
    info = get_study(name)
    return StudySpec(
        study=name, params=dict(info.smoke_params), n_jobs=n_jobs, random_state=7
    )


class TestSessionRun:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_every_study_runs_and_parallel_equals_serial(self, name):
        with Session() as session:
            serial = session.run(_smoke_spec(name, n_jobs=1))
        with Session() as session:
            parallel = session.run(_smoke_spec(name, n_jobs=2))
        rows_serial = serial.to_rows()
        rows_parallel = parallel.to_rows()
        assert rows_serial, f"study {name} produced no rows"
        # Bitwise equality of every reported value, row by row.
        assert json.dumps(rows_serial, sort_keys=True, default=str) == json.dumps(
            rows_parallel, sort_keys=True, default=str
        )
        # The uniform interface is complete.
        assert name in parallel.to_json()
        assert parallel.summary()

    def test_spec_params_validated(self):
        with Session() as session:
            with pytest.raises(ValueError, match="valid parameters"):
                session.run(StudySpec(study="variance", params={"bogus": 1}))

    def test_run_accepts_bare_study_name(self):
        with Session() as session:
            result = session.run("sample_size")
        assert result.to_rows()

    def test_shared_cache_replays_across_runs(self):
        spec = _smoke_spec("hpo_curves", n_jobs=1)
        with Session() as session:
            first = session.run(spec)
            second = session.run(spec)
            assert first.cache_stats["misses"] > 0
            assert second.cache_stats["misses"] == 0
            assert second.cache_stats["hits"] == (
                first.cache_stats["misses"] + first.cache_stats["hits"]
            )
            assert session.studies_run == 2
            assert session.stats()["cache"]["entries"] > 0
        # Warm replay is bitwise identical.
        assert json.dumps(first.to_rows(), sort_keys=True) == json.dumps(
            second.to_rows(), sort_keys=True
        )

    def test_cache_false_disables_memoization(self):
        spec = _smoke_spec("hpo_curves", n_jobs=1).replace(cache=False)
        with Session() as session:
            result = session.run(spec)
            assert result.cache_stats == {}
            assert len(session.cache) == 0

    def test_cache_path_uses_dedicated_file_cache(self, tmp_path):
        path = str(tmp_path / "warm.pkl")
        spec = _smoke_spec("hpo_curves", n_jobs=1).replace(cache=path)
        with Session() as session:
            session.run(spec)
            assert len(session.cache) == 0  # shared cache untouched
            replay = session.run(spec)
            assert replay.cache_stats["misses"] == 0
        # Closing the session persisted the file cache: a fresh session
        # (fresh process, in real use) replays without a single refit.
        with Session() as fresh:
            rewarmed = fresh.run(spec)
        assert rewarmed.cache_stats["misses"] == 0
        assert rewarmed.cache_stats["hits"] > 0

    def test_session_shared_path_cache_saved_on_close(self, tmp_path):
        path = str(tmp_path / "shared.pkl")
        spec = _smoke_spec("hpo_curves", n_jobs=1)
        with Session(cache=path) as session:
            session.run(spec)
        with Session(cache=path) as fresh:
            replay = fresh.run(spec)
        assert replay.cache_stats["misses"] == 0

    def test_concurrent_shards_report_exact_per_run_stats(self):
        spec = StudySpec(
            study="binomial",
            params={
                "task_names": ["entailment", "sentiment"],
                "n_splits": 3,
                "dataset_size": 200,
            },
            random_state=2,
        )
        with Session() as session:
            merged = session.submit(spec).result()
            totals = session.cache.stats()
        # Per-shard deltas are counted through per-run views, so the merged
        # counters equal the shared cache's totals even though the shards
        # ran concurrently against the same cache.
        assert merged.cache_stats["hits"] == totals["hits"]
        assert merged.cache_stats["misses"] == totals["misses"]

    def test_external_cache_object_is_shared(self):
        cache = MeasurementCache(max_entries=100)
        with Session(cache=cache) as session:
            session.run(_smoke_spec("hpo_curves", n_jobs=1))
        assert cache.stats()["entries"] > 0


# ----------------------------------------------------------------------
# Session.submit: streaming handles
# ----------------------------------------------------------------------
class TestSessionSubmit:
    def test_sharded_submit_streams_and_merges_deterministically(self):
        spec = StudySpec(
            study="variance",
            params={
                "task_names": ["entailment", "sentiment"],
                "n_seeds": 3,
                "include_hpo": False,
                "dataset_size": 200,
            },
            random_state=0,
        )
        with Session() as session:
            handle = session.submit(spec)
            assert len(handle) == 2
            partials = list(handle)
            merged = handle.result()
            assert handle.done()
        assert len(partials) == 2
        tasks = [row["task"] for row in merged.to_rows()]
        # Submission order, not completion order: entailment rows first.
        assert tasks == sorted(tasks, key=["entailment", "sentiment"].index)
        # Resubmission is deterministic: same spec, same merged rows,
        # regardless of which shard finished first.
        with Session() as session:
            again = session.submit(spec).result()
        assert json.dumps(merged.to_rows(), sort_keys=True) == json.dumps(
            again.to_rows(), sort_keys=True
        )

    def test_merged_result_points_to_parts_for_native_attributes(self):
        spec = StudySpec(
            study="sample_size", params={"gammas": [0.7, 0.75]}, random_state=0
        )
        with Session() as session:
            merged = session.submit(spec).result()
        with pytest.raises(AttributeError, match=r"\.parts"):
            merged.gammas
        assert len(merged.raw.parts) == 2
        assert float(merged.raw.parts[0].gammas[0]) == 0.7

    def test_file_cache_persisted_even_after_close(self, tmp_path):
        path = str(tmp_path / "late.pkl")
        session = Session()
        session.close()
        session.run(_smoke_spec("hpo_curves", n_jobs=1).replace(cache=path))
        with Session() as fresh:
            replay = fresh.run(_smoke_spec("hpo_curves", n_jobs=1).replace(cache=path))
        assert replay.cache_stats["misses"] == 0

    def test_unsharded_study_submits_single_future(self):
        with Session() as session:
            handle = session.submit(_smoke_spec("sota", n_jobs=1))
            assert len(handle) == 1
            assert handle.result(timeout=60).to_rows()

    def test_submit_after_close_raises(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed Session"):
            session.submit(_smoke_spec("sota", n_jobs=1))


# ----------------------------------------------------------------------
# The determinism contract: submit(spec) == run(spec), bitwise
# ----------------------------------------------------------------------
#: Multi-shard parameters for every study with a shard axis, at a scale
#: that keeps the full matrix in CI budget.
SHARD_PARITY_PARAMS = {
    "variance": {
        "task_names": ["entailment", "sentiment"],
        "n_seeds": 3,
        "include_hpo": False,
        "dataset_size": 200,
    },
    "normality": {
        "task_names": ["entailment", "sentiment"],
        "n_seeds": 3,
        "dataset_size": 200,
    },
    "estimator": {
        "task_names": ["entailment", "sentiment"],
        "k_max": 3,
        "n_repetitions": 2,
        "hpo_budget": 2,
        "dataset_size": 200,
    },
    "binomial": {
        "task_names": ["entailment", "sentiment"],
        "n_splits": 3,
        "dataset_size": 200,
    },
    "hpo_curves": {
        "task_names": ["entailment", "sentiment"],
        "budget": 2,
        "n_repetitions": 2,
        "dataset_size": 200,
    },
    "sample_size": {"gammas": [0.7, 0.75, 0.9]},
    "layer_ablation": {
        "task_names": ["entailment"],
        "combos": ["none", "dropout", "order", "all"],
        "n_seeds": 3,
        "dataset_size": 150,
    },
}


def _canon(result) -> str:
    return json.dumps(result.to_rows(), sort_keys=True, default=str)


class TestShardParity:
    """Sharded streaming execution is bitwise-equal to monolithic execution.

    Seeds are derived from scope paths (task / gamma / repetition), never
    from a shared rng stream, so a shard computes exactly the measurements
    the full run assigns to its key — at any worker count.
    """

    def test_matrix_covers_every_shardable_study(self):
        shardable = {info.name for info in iter_studies() if info.shard_param}
        assert shardable == set(SHARD_PARITY_PARAMS)

    @pytest.mark.parametrize("name", sorted(SHARD_PARITY_PARAMS))
    def test_submit_equals_run_bitwise(self, name):
        rows_by_n_jobs = {}
        for n_jobs in (1, 4):
            spec = StudySpec(
                study=name,
                params=SHARD_PARITY_PARAMS[name],
                n_jobs=n_jobs,
                random_state=11,
            )
            with Session() as session:
                full = session.run(spec)
                handle = session.submit(spec)
                assert len(handle) > 1
                merged = handle.result()
            axis = get_study(name).shard_param
            assert all(key.startswith(f"{axis}=") for key in handle.keys)
            rows_by_n_jobs[n_jobs] = _canon(full)
            assert _canon(full) == _canon(merged), (name, n_jobs)
        # And the whole thing is independent of the worker count.
        assert rows_by_n_jobs[1] == rows_by_n_jobs[4], name

    def test_layer_ablation_parity_across_batch_sizes(self):
        """The ablation grid survives vectorized multi-seed batching too:
        batch_size 1 vs 4, full vs sharded, all bitwise-equal."""
        spec = StudySpec(
            study="layer_ablation",
            params=SHARD_PARITY_PARAMS["layer_ablation"],
            random_state=11,
        )
        rows_by_batch = {}
        for batch_size in (1, 4):
            with Session(batch_size=batch_size, backend="thread") as session:
                full = session.run(spec)
                handle = session.submit(spec)
                assert len(handle) > 1
                merged = handle.result()
            assert _canon(full) == _canon(merged), batch_size
            rows_by_batch[batch_size] = _canon(full)
        assert rows_by_batch[1] == rows_by_batch[4]

    def test_sharded_submit_replays_run_measurements(self):
        """Same session: the sharded rerun hits the cache for every key —
        direct evidence that shards derive the very same seeds."""
        spec = StudySpec(
            study="binomial",
            params=SHARD_PARITY_PARAMS["binomial"],
            random_state=3,
        )
        with Session() as session:
            first = session.run(spec)
            merged = session.submit(spec).result()
        assert first.cache_stats["misses"] > 0
        assert merged.cache_stats["misses"] == 0
        assert merged.cache_stats["hits"] == first.cache_stats["misses"]

    def test_duplicate_shard_values_fall_back_to_single_future(self):
        spec = StudySpec(
            study="sample_size",
            params={"gammas": [0.75, 0.75]},
            random_state=0,
        )
        with Session() as session:
            handle = session.submit(spec)
            assert len(handle) == 1
            assert len(handle.result().to_rows()) == 2

    def test_non_list_shard_param_never_crashes_submit_itself(self):
        # A scalar where the driver expects a list is the driver's error to
        # raise — inside the future, not synchronously in _shard.
        spec = StudySpec(study="sample_size", params={"gammas": 0.75})
        with Session() as session:
            handle = session.submit(spec)
            assert len(handle) == 1
            with pytest.raises(TypeError):
                handle.result()


# ----------------------------------------------------------------------
# Concurrent per-key persistence (Session cache_dir)
# ----------------------------------------------------------------------
class TestSessionCacheDir:
    def test_cache_dir_persists_and_rewarns(self, tmp_path):
        directory = str(tmp_path / "store")
        spec = _smoke_spec("hpo_curves", n_jobs=1)
        with Session(cache_dir=directory) as session:
            cold = session.run(spec)
        assert cold.cache_stats["misses"] > 0
        with Session(cache_dir=directory) as fresh:
            warm = fresh.run(spec)
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hits"] > 0
        assert fresh.cache.store_hits > 0
        assert json.dumps(cold.to_rows(), sort_keys=True) == json.dumps(
            warm.to_rows(), sort_keys=True
        )

    def test_cache_dir_and_cache_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="mutually exclusive"):
            Session(cache="x.pkl", cache_dir=str(tmp_path))

    def test_concurrent_sessions_share_cache_dir_without_corruption(self, tmp_path):
        """Two sessions running concurrently against one cache_dir: both
        persist, the store stays intact, and a fresh session replays every
        measurement without a single refit."""
        directory = str(tmp_path / "shared")
        specs = [
            StudySpec(
                study="binomial",
                params={
                    "task_names": [task],
                    "n_splits": 3,
                    "dataset_size": 200,
                },
                random_state=3,
            )
            for task in ("entailment", "sentiment")
        ]

        def run_session(spec):
            with Session(cache_dir=directory) as session:
                return session.run(spec).cache_stats

        with ThreadPoolExecutor(2) as pool:
            stats = list(pool.map(run_session, specs))
        assert all(s["misses"] > 0 for s in stats)
        with Session(cache_dir=directory) as fresh:
            for spec in specs:
                replay = fresh.run(spec)
                assert replay.cache_stats["misses"] == 0
                assert replay.cache_stats["hits"] > 0

    def test_eviction_counter_reported(self):
        spec = _smoke_spec("hpo_curves", n_jobs=1)
        with Session(max_cache_entries=2) as session:
            result = session.run(spec)
        assert result.cache_stats["evictions"] > 0
        assert "evictions=" in result.summary()


# ----------------------------------------------------------------------
# Cancellation propagation
# ----------------------------------------------------------------------
class TestCancellation:
    def _make_handle(self, pool, first_started, release):
        spec = StudySpec(study="sample_size", params={"gammas": [0.7, 0.75]})
        shards = Session._shard(spec, get_study("sample_size"))
        event = threading.Event()

        def blocked_shard(shard_spec):
            first_started.set()
            release.wait(timeout=10)
            if event.is_set():
                raise StudyCancelled("stopped at the batch boundary")
            with Session() as session:
                return session.run(shard_spec)

        keys = list(shards)
        futures = {
            keys[0]: pool.submit(blocked_shard, shards[keys[0]]),
            keys[1]: pool.submit(blocked_shard, shards[keys[1]]),
        }
        return StudyHandle(spec, shards, futures, cancel_event=event), event

    def test_cancel_sets_event_and_cancels_pending_shards(self):
        first_started, release = threading.Event(), threading.Event()
        with ThreadPoolExecutor(1) as pool:  # one worker: shard 2 must queue
            handle, event = self._make_handle(pool, first_started, release)
            assert first_started.wait(timeout=10)
            assert not handle.cancelled()
            cancelled_all = handle.cancel()
            release.set()
            assert event.is_set() and handle.cancelled()
            # The queued shard never started; the running one aborted at
            # its next cancellation point.
            assert not cancelled_all  # shard 1 was already running
            with pytest.raises((CancelledError, StudyCancelled)):
                handle.result()
            # Streaming consumers drain without raising.
            assert list(handle.partial_results()) == []
            assert handle.done()

    def test_submit_wires_cancel_event_into_executors(self):
        spec = StudySpec(
            study="variance",
            params={
                "task_names": ["entailment", "sentiment"],
                "n_seeds": 3,
                "include_hpo": False,
                "dataset_size": 200,
            },
            random_state=0,
        )
        with Session(max_concurrent_studies=1) as session:
            handle = session.submit(spec)
            handle.cancel()
            assert handle.cancelled()
            # Whatever had not finished was stopped; draining never hangs.
            list(handle.partial_results())
            assert handle.done()

    def test_cancel_after_completion_is_noop(self):
        with Session() as session:
            handle = session.submit(_smoke_spec("sample_size", n_jobs=1))
            result = handle.result()
        assert handle.cancel() is False
        assert result.to_rows()


# ----------------------------------------------------------------------
# CLI front door (python -m repro)
# ----------------------------------------------------------------------
class TestCLI:
    def test_run_prints_summary(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = StudySpec(
            study="sample_size", params={"gammas": [0.7, 0.75]}, random_state=0
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "study=sample_size" in out
        assert "Figure C.1" in out

    def test_run_with_overrides_and_cache_dir(self, tmp_path, capsys):
        from repro.__main__ import main

        spec = _smoke_spec("hpo_curves", n_jobs=1)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        store = tmp_path / "store"
        assert main(["run", str(path), "--n-jobs", "2", "--cache-dir", str(store)]) == 0
        first = capsys.readouterr().out
        assert "cache hits/misses=" in first
        # Second invocation (fresh process in real life) replays from the store.
        assert main(["run", str(path), "--cache-dir", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_stats"]["misses"] == 0
        assert payload["rows"]

    def test_list_names_every_study(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_STUDIES:
            assert name in out


# ----------------------------------------------------------------------
# StudyResult adapter
# ----------------------------------------------------------------------
class TestStudyResult:
    def test_requires_rows_and_report(self):
        with pytest.raises(TypeError, match="does not implement"):
            StudyResult(object())

    def test_delegates_to_raw(self):
        class Raw:
            def rows(self):
                return [{"x": 1}]

            def report(self):
                return "table"

            extra = "native-attribute"

        result = StudyResult(Raw())
        assert result.extra == "native-attribute"
        assert result.to_rows() == [{"x": 1}]
        assert "table" in result.summary()
