"""Tests for the unified Study API (repro.api).

Covers the three layers of the front door:

* ``StudySpec`` — validation and the JSON round-trip (property-tested);
* the registry — completeness over the experiment layer and metadata
  integrity (smoke params must be valid driver kwargs);
* ``Session`` — every registered study runs at tiny scale, is
  bitwise-identical at ``n_jobs=1`` vs ``n_jobs=2``, shares one warm
  cache across runs, and streams shard results through ``submit``.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments as experiments
from repro.api import Session, StudySpec, get_study, iter_studies, list_studies
from repro.api.registry import ENGINE_PARAMS
from repro.api.results import StudyResult
from repro.engine import MeasurementCache

#: Studies whose smoke-scale run is fast enough for the equivalence matrix.
ALL_STUDIES = list_studies()


# ----------------------------------------------------------------------
# StudySpec
# ----------------------------------------------------------------------
_param_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)

_specs = st.builds(
    StudySpec,
    study=st.sampled_from(ALL_STUDIES),
    params=st.dictionaries(
        st.text(min_size=1, max_size=16), _param_values, max_size=4
    ),
    n_jobs=st.none() | st.integers(min_value=-1, max_value=8),
    backend=st.none() | st.sampled_from(["serial", "thread", "process"]),
    cache=st.booleans() | st.text(min_size=1, max_size=20),
    random_state=st.none() | st.integers(min_value=0, max_value=2**31),
)


class TestStudySpec:
    @settings(max_examples=200, deadline=None)
    @given(spec=_specs)
    def test_json_round_trip_property(self, spec):
        assert StudySpec.from_json(spec.to_json()) == spec
        assert StudySpec.from_dict(spec.to_dict()) == spec
        # to_json output is valid, self-contained JSON.
        assert json.loads(spec.to_json())["study"] == spec.study

    def test_tuples_normalize_to_lists(self):
        spec = StudySpec(study="variance", params={"task_names": ("entailment",)})
        assert spec.params["task_names"] == ["entailment"]
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_invalid_study_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(study="")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            StudySpec(study="variance", backend="mpi")

    def test_non_serializable_param_rejected(self):
        with pytest.raises(TypeError):
            StudySpec(study="variance", params={"rng": object()})

    def test_generator_random_state_rejected(self):
        import numpy as np

        with pytest.raises(TypeError):
            StudySpec(study="variance", random_state=np.random.default_rng(0))

    def test_unknown_field_rejected_in_from_dict(self):
        with pytest.raises(ValueError, match="unknown StudySpec fields"):
            StudySpec.from_dict({"study": "variance", "jobs": 2})

    def test_replace_and_with_params(self):
        spec = StudySpec(study="variance", params={"n_seeds": 5})
        assert spec.replace(n_jobs=4).n_jobs == 4
        assert spec.with_params(n_seeds=9).params["n_seeds"] == 9
        assert spec.params["n_seeds"] == 5  # original untouched

    def test_specs_are_hashable_and_immutable(self):
        a = StudySpec(study="variance", params={"task_names": ["entailment"]})
        b = StudySpec(study="variance", params={"task_names": ("entailment",)})
        c = a.replace(n_jobs=4)
        assert a == b and hash(a) == hash(b)
        assert len({a, b, c}) == 2  # equal specs dedupe in a set
        with pytest.raises(TypeError):
            a.params["task_names"] = ["sentiment"]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_experiment_driver_is_registered(self):
        registered = {info.func for info in iter_studies()}
        drivers = {
            getattr(experiments, name)
            for name in experiments.__all__
            if name.startswith("run_")
        }
        missing = {fn.__name__ for fn in drivers - registered}
        assert not missing, f"unregistered experiment drivers: {sorted(missing)}"

    def test_ten_studies_registered(self):
        assert len(ALL_STUDIES) >= 10

    def test_unknown_study_lists_alternatives(self):
        with pytest.raises(KeyError, match="registered studies"):
            get_study("not-a-study")

    def test_metadata_complete(self):
        for info in iter_studies():
            assert info.artefact, info.name
            assert info.description, info.name
            # Smoke params must be real driver kwargs.
            info.validate_params(info.smoke_params)

    def test_every_driver_accepts_engine_params(self):
        for info in iter_studies():
            valid = info.valid_params()
            for knob in ENGINE_PARAMS:
                assert knob in valid, (info.name, knob)

    def test_engine_knobs_rejected_inside_params(self):
        info = get_study("variance")
        with pytest.raises(ValueError, match="StudySpec fields"):
            info.validate_params({"n_jobs": 4})

    def test_unknown_param_rejected_with_valid_list(self):
        info = get_study("variance")
        with pytest.raises(ValueError, match="valid parameters"):
            info.validate_params({"n_seedz": 4})


# ----------------------------------------------------------------------
# Session.run: every registered study, parallel == serial
# ----------------------------------------------------------------------
def _smoke_spec(name: str, *, n_jobs: int) -> StudySpec:
    info = get_study(name)
    return StudySpec(
        study=name, params=dict(info.smoke_params), n_jobs=n_jobs, random_state=7
    )


class TestSessionRun:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_every_study_runs_and_parallel_equals_serial(self, name):
        with Session() as session:
            serial = session.run(_smoke_spec(name, n_jobs=1))
        with Session() as session:
            parallel = session.run(_smoke_spec(name, n_jobs=2))
        rows_serial = serial.to_rows()
        rows_parallel = parallel.to_rows()
        assert rows_serial, f"study {name} produced no rows"
        # Bitwise equality of every reported value, row by row.
        assert json.dumps(rows_serial, sort_keys=True, default=str) == json.dumps(
            rows_parallel, sort_keys=True, default=str
        )
        # The uniform interface is complete.
        assert name in parallel.to_json()
        assert parallel.summary()

    def test_spec_params_validated(self):
        with Session() as session:
            with pytest.raises(ValueError, match="valid parameters"):
                session.run(StudySpec(study="variance", params={"bogus": 1}))

    def test_run_accepts_bare_study_name(self):
        with Session() as session:
            result = session.run("sample_size")
        assert result.to_rows()

    def test_shared_cache_replays_across_runs(self):
        spec = _smoke_spec("hpo_curves", n_jobs=1)
        with Session() as session:
            first = session.run(spec)
            second = session.run(spec)
            assert first.cache_stats["misses"] > 0
            assert second.cache_stats["misses"] == 0
            assert second.cache_stats["hits"] == (
                first.cache_stats["misses"] + first.cache_stats["hits"]
            )
            assert session.studies_run == 2
            assert session.stats()["cache"]["entries"] > 0
        # Warm replay is bitwise identical.
        assert json.dumps(first.to_rows(), sort_keys=True) == json.dumps(
            second.to_rows(), sort_keys=True
        )

    def test_cache_false_disables_memoization(self):
        spec = _smoke_spec("hpo_curves", n_jobs=1).replace(cache=False)
        with Session() as session:
            result = session.run(spec)
            assert result.cache_stats == {}
            assert len(session.cache) == 0

    def test_cache_path_uses_dedicated_file_cache(self, tmp_path):
        path = str(tmp_path / "warm.pkl")
        spec = _smoke_spec("hpo_curves", n_jobs=1).replace(cache=path)
        with Session() as session:
            session.run(spec)
            assert len(session.cache) == 0  # shared cache untouched
            replay = session.run(spec)
            assert replay.cache_stats["misses"] == 0
        # Closing the session persisted the file cache: a fresh session
        # (fresh process, in real use) replays without a single refit.
        with Session() as fresh:
            rewarmed = fresh.run(spec)
        assert rewarmed.cache_stats["misses"] == 0
        assert rewarmed.cache_stats["hits"] > 0

    def test_session_shared_path_cache_saved_on_close(self, tmp_path):
        path = str(tmp_path / "shared.pkl")
        spec = _smoke_spec("hpo_curves", n_jobs=1)
        with Session(cache=path) as session:
            session.run(spec)
        with Session(cache=path) as fresh:
            replay = fresh.run(spec)
        assert replay.cache_stats["misses"] == 0

    def test_concurrent_shards_report_exact_per_run_stats(self):
        spec = StudySpec(
            study="binomial",
            params={
                "task_names": ["entailment", "sentiment"],
                "n_splits": 3,
                "dataset_size": 200,
            },
            random_state=2,
        )
        with Session() as session:
            merged = session.submit(spec).result()
            totals = session.cache.stats()
        # Per-shard deltas are counted through per-run views, so the merged
        # counters equal the shared cache's totals even though the shards
        # ran concurrently against the same cache.
        assert merged.cache_stats["hits"] == totals["hits"]
        assert merged.cache_stats["misses"] == totals["misses"]

    def test_external_cache_object_is_shared(self):
        cache = MeasurementCache(max_entries=100)
        with Session(cache=cache) as session:
            session.run(_smoke_spec("hpo_curves", n_jobs=1))
        assert cache.stats()["entries"] > 0


# ----------------------------------------------------------------------
# Session.submit: streaming handles
# ----------------------------------------------------------------------
class TestSessionSubmit:
    def test_sharded_submit_streams_and_merges_deterministically(self):
        spec = StudySpec(
            study="variance",
            params={
                "task_names": ["entailment", "sentiment"],
                "n_seeds": 3,
                "include_hpo": False,
                "dataset_size": 200,
            },
            random_state=0,
        )
        with Session() as session:
            handle = session.submit(spec)
            assert len(handle) == 2
            partials = list(handle)
            merged = handle.result()
            assert handle.done()
        assert len(partials) == 2
        tasks = [row["task"] for row in merged.to_rows()]
        # Submission order, not completion order: entailment rows first.
        assert tasks == sorted(tasks, key=["entailment", "sentiment"].index)
        # Resubmission is deterministic: same spec, same merged rows,
        # regardless of which shard finished first.
        with Session() as session:
            again = session.submit(spec).result()
        assert json.dumps(merged.to_rows(), sort_keys=True) == json.dumps(
            again.to_rows(), sort_keys=True
        )

    def test_merged_result_points_to_parts_for_native_attributes(self):
        spec = StudySpec(
            study="sample_size", params={"gammas": [0.7, 0.75]}, random_state=0
        )
        with Session() as session:
            merged = session.submit(spec).result()
        with pytest.raises(AttributeError, match=r"\.parts"):
            merged.gammas
        assert len(merged.raw.parts) == 2
        assert float(merged.raw.parts[0].gammas[0]) == 0.7

    def test_file_cache_persisted_even_after_close(self, tmp_path):
        path = str(tmp_path / "late.pkl")
        session = Session()
        session.close()
        session.run(_smoke_spec("hpo_curves", n_jobs=1).replace(cache=path))
        with Session() as fresh:
            replay = fresh.run(_smoke_spec("hpo_curves", n_jobs=1).replace(cache=path))
        assert replay.cache_stats["misses"] == 0

    def test_unsharded_study_submits_single_future(self):
        with Session() as session:
            handle = session.submit(_smoke_spec("sota", n_jobs=1))
            assert len(handle) == 1
            assert handle.result(timeout=60).to_rows()

    def test_submit_after_close_raises(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="closed Session"):
            session.submit(_smoke_spec("sota", n_jobs=1))


# ----------------------------------------------------------------------
# StudyResult adapter
# ----------------------------------------------------------------------
class TestStudyResult:
    def test_requires_rows_and_report(self):
        with pytest.raises(TypeError, match="does not implement"):
            StudyResult(object())

    def test_delegates_to_raw(self):
        class Raw:
            def rows(self):
                return [{"x": 1}]

            def report(self):
                return "table"

            extra = "native-attribute"

        result = StudyResult(Raw())
        assert result.extra == "native-attribute"
        assert result.to_rows() == [{"x": 1}]
        assert "table" in result.summary()
