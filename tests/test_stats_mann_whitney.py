"""Tests for the probability-of-outperforming estimates."""

import numpy as np
import pytest

from repro.stats.mann_whitney import (
    mann_whitney_u,
    paired_probability_of_outperforming,
    probability_of_outperforming,
)


class TestMannWhitneyU:
    def test_all_wins(self):
        assert mann_whitney_u(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 4.0

    def test_no_wins(self):
        assert mann_whitney_u(np.array([0.0]), np.array([1.0, 2.0])) == 0.0

    def test_ties_half(self):
        assert mann_whitney_u(np.array([1.0]), np.array([1.0])) == 0.5


class TestProbabilityOfOutperforming:
    def test_identical_distributions_half(self, rng):
        a = rng.normal(size=200)
        assert probability_of_outperforming(a, a.copy()) == pytest.approx(0.5, abs=1e-12)

    def test_dominant_sample_near_one(self, rng):
        a = rng.normal(loc=10, size=50)
        b = rng.normal(loc=0, size=50)
        assert probability_of_outperforming(a, b) > 0.99

    def test_symmetry(self, rng):
        a = rng.normal(size=30)
        b = rng.normal(size=40)
        assert probability_of_outperforming(a, b) == pytest.approx(
            1.0 - probability_of_outperforming(b, a)
        )

    def test_matches_normal_theory(self, rng):
        # P(A>B) = Phi(delta / (sqrt(2) sigma)) for normal samples.
        from scipy.stats import norm

        sigma, delta = 1.0, 1.0
        a = rng.normal(loc=delta, scale=sigma, size=4000)
        b = rng.normal(loc=0.0, scale=sigma, size=4000)
        expected = norm.cdf(delta / (np.sqrt(2) * sigma))
        assert probability_of_outperforming(a, b) == pytest.approx(expected, abs=0.02)


class TestPairedProbabilityOfOutperforming:
    def test_requires_same_length(self):
        with pytest.raises(ValueError):
            paired_probability_of_outperforming(np.ones(3), np.ones(2))

    def test_counts_wins_and_ties(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([1.0, 1.0, 5.0, 2.0])
        # one tie (0.5), two wins, one loss -> 2.5 / 4
        assert paired_probability_of_outperforming(a, b) == pytest.approx(0.625)

    def test_bounds(self, rng):
        a = rng.normal(size=20)
        b = rng.normal(size=20)
        p = paired_probability_of_outperforming(a, b)
        assert 0.0 <= p <= 1.0

    def test_pairing_removes_shared_noise(self, rng):
        # With a huge shared component, pairing detects the small improvement
        # perfectly, while unpaired comparison stays close to chance.
        shared = rng.normal(scale=10.0, size=200)
        a = shared + 0.1 + rng.normal(scale=0.01, size=200)
        b = shared + rng.normal(scale=0.01, size=200)
        assert paired_probability_of_outperforming(a, b) > 0.95
        assert abs(probability_of_outperforming(a, b) - 0.5) < 0.2
