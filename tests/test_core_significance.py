"""Tests for the recommended statistical-testing workflow (Appendix C)."""

import numpy as np
import pytest

from repro.core.significance import (
    SignificanceConclusion,
    probability_of_outperforming_test,
)


class TestProbabilityOfOutperformingTest:
    def test_clear_winner_is_significant_and_meaningful(self, rng):
        a = rng.normal(0.9, 0.01, size=30)
        b = rng.normal(0.7, 0.01, size=30)
        report = probability_of_outperforming_test(a, b, random_state=0)
        assert report.conclusion == SignificanceConclusion.SIGNIFICANT_AND_MEANINGFUL
        assert report.significant and report.meaningful
        assert report.p_a_gt_b == 1.0

    def test_identical_algorithms_not_significant(self, rng):
        scores = rng.normal(0.8, 0.02, size=30)
        report = probability_of_outperforming_test(scores, scores + rng.normal(0, 0.02, 30), random_state=0)
        assert report.conclusion == SignificanceConclusion.NOT_SIGNIFICANT or report.p_a_gt_b < 0.7

    def test_small_consistent_improvement_significant_not_meaningful(self, rng):
        sigma = 0.05
        a = rng.normal(0.710, sigma, size=4000)
        b = rng.normal(0.700, sigma, size=4000)
        report = probability_of_outperforming_test(a, b, gamma=0.75, random_state=0)
        assert report.conclusion == SignificanceConclusion.SIGNIFICANT_NOT_MEANINGFUL

    def test_ci_bounds_ordered_and_contain_estimate(self, rng):
        a = rng.normal(0.75, 0.02, size=25)
        b = rng.normal(0.74, 0.02, size=25)
        report = probability_of_outperforming_test(a, b, random_state=0)
        assert report.ci_low <= report.p_a_gt_b <= report.ci_high

    def test_unpaired_lengths_rejected(self):
        with pytest.raises(ValueError):
            probability_of_outperforming_test(np.ones(5), np.ones(4))

    def test_gamma_validated(self, rng):
        with pytest.raises(ValueError):
            probability_of_outperforming_test(
                rng.normal(size=10), rng.normal(size=10), gamma=1.5
            )

    def test_n_pairs_recorded(self, rng):
        report = probability_of_outperforming_test(
            rng.normal(size=12), rng.normal(size=12), random_state=0
        )
        assert report.n_pairs == 12

    def test_false_positive_rate_controlled(self):
        # Under H0 (identical algorithms), the rate of "significant and
        # meaningful" conclusions should be small.
        master = np.random.default_rng(0)
        detections = 0
        for _ in range(40):
            a = master.normal(0.7, 0.02, size=29)
            b = master.normal(0.7, 0.02, size=29)
            report = probability_of_outperforming_test(a, b, n_bootstraps=200, random_state=master)
            detections += report.meaningful
        assert detections <= 4
