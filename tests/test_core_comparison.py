"""Tests for the comparison criteria (Section 4.1)."""

import numpy as np
import pytest

from repro.core.comparison import (
    AverageComparison,
    ProbabilityOfOutperforming,
    SinglePointComparison,
)


class TestSinglePointComparison:
    def test_uses_only_first_run(self):
        method = SinglePointComparison(delta=0.0)
        a = np.array([0.9, 0.1, 0.1])
        b = np.array([0.5, 0.99, 0.99])
        assert method.decide(a, b).a_is_better

    def test_threshold_applied(self):
        method = SinglePointComparison(delta=0.2)
        assert not method.decide(np.array([0.6]), np.array([0.5])).a_is_better
        assert method.decide(np.array([0.8]), np.array([0.5])).a_is_better

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            SinglePointComparison(delta=-0.1)


class TestAverageComparison:
    def test_compares_means(self):
        method = AverageComparison(delta=0.0)
        a = np.array([0.6, 0.7, 0.8])
        b = np.array([0.5, 0.6, 0.7])
        assert method.decide(a, b).a_is_better
        assert not method.decide(b, a).a_is_better

    def test_from_sigma_uses_paper_multiplier(self):
        method = AverageComparison.from_sigma(0.01)
        assert method.delta == pytest.approx(0.019952)

    def test_details_reported(self):
        decision = AverageComparison(delta=0.1).decide(np.array([0.9]), np.array([0.5]))
        assert decision.details["difference"] == pytest.approx(0.4)
        assert decision.details["delta"] == pytest.approx(0.1)

    def test_conservative_for_small_improvements(self, rng):
        # An improvement smaller than delta is never detected, regardless of
        # how many samples support it — the criterion ignores variance.
        method = AverageComparison(delta=0.05)
        a = rng.normal(0.72, 0.001, size=1000)
        b = rng.normal(0.70, 0.001, size=1000)
        assert not method.decide(a, b).a_is_better


class TestProbabilityOfOutperforming:
    def test_clear_improvement_detected(self, rng):
        a = rng.normal(0.8, 0.01, size=40)
        b = rng.normal(0.7, 0.01, size=40)
        decision = ProbabilityOfOutperforming(random_state=0).decide(a, b)
        assert decision.a_is_better
        assert decision.details["p_a_gt_b"] > 0.95

    def test_no_difference_not_detected(self, rng):
        a = rng.normal(0.7, 0.01, size=40)
        b = rng.normal(0.7, 0.01, size=40)
        assert not ProbabilityOfOutperforming(random_state=0).decide(a, b).a_is_better

    def test_significant_but_not_meaningful(self, rng):
        # A tiny but consistent improvement: significant, yet P(A>B) stays
        # below gamma, so the criterion does not declare a meaningful win.
        sigma = 0.05
        a = rng.normal(0.70 + 0.005, sigma, size=2000)
        b = rng.normal(0.70, sigma, size=2000)
        decision = ProbabilityOfOutperforming(gamma=0.75, random_state=0).decide(a, b)
        assert not decision.a_is_better
        assert 0.5 < decision.details["p_a_gt_b"] < 0.6

    def test_direction_matters(self, rng):
        a = rng.normal(0.6, 0.01, size=30)
        b = rng.normal(0.8, 0.01, size=30)
        assert not ProbabilityOfOutperforming(random_state=0).decide(a, b).a_is_better

    def test_details_contain_interval(self, rng):
        decision = ProbabilityOfOutperforming(random_state=0).decide(
            rng.normal(size=20), rng.normal(size=20)
        )
        assert decision.details["ci_low"] <= decision.details["ci_high"]
