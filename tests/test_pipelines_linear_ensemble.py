"""Tests for the linear baselines and the ensemble regressor."""

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.pipelines.ensemble import EnsembleMLPRegressorPipeline
from repro.pipelines.linear import LogisticRegressionPipeline, RidgeRegressionPipeline
from repro.pipelines.mlp import MLPClassifierPipeline
from repro.utils.rng import SeedBundle


class TestLogisticRegressionPipeline:
    def test_learns_separable_task(self, blobs_dataset, seed_bundle):
        pipeline = LogisticRegressionPipeline(n_epochs=15)
        outcome = pipeline.fit(blobs_dataset, None, seed_bundle)
        assert outcome.train_score > 0.8

    def test_weaker_than_mlp_on_nonlinear_task(self, hard_dataset, seed_bundle):
        linear = LogisticRegressionPipeline(n_epochs=15)
        mlp = MLPClassifierPipeline(hidden_sizes=(32,), n_epochs=15)
        linear_score = linear.fit(hard_dataset, None, seed_bundle).train_score
        mlp_score = mlp.fit(hard_dataset, None, seed_bundle).train_score
        assert mlp_score >= linear_score

    def test_search_space(self):
        names = LogisticRegressionPipeline().search_space().names
        assert "learning_rate" in names and "weight_decay" in names

    def test_reproducibility(self, blobs_dataset, seed_bundle):
        pipeline = LogisticRegressionPipeline(n_epochs=3)
        assert (
            pipeline.fit(blobs_dataset, None, seed_bundle).train_score
            == pipeline.fit(blobs_dataset, None, seed_bundle).train_score
        )


class TestRidgeRegressionPipeline:
    def test_fits_regression(self, regression_dataset, seed_bundle):
        pipeline = RidgeRegressionPipeline(n_epochs=15)
        outcome = pipeline.fit(regression_dataset, None, seed_bundle)
        assert outcome.train_score > -0.5

    def test_metric_default(self):
        assert RidgeRegressionPipeline().metric_name == "r2"


class TestEnsembleMLPRegressorPipeline:
    def test_fit_produces_members(self, regression_dataset, seed_bundle):
        pipeline = EnsembleMLPRegressorPipeline(n_members=3, n_epochs=3)
        outcome = pipeline.fit(regression_dataset, None, seed_bundle)
        assert len(outcome.model) == 3

    def test_prediction_is_member_average(self, regression_dataset, seed_bundle):
        pipeline = EnsembleMLPRegressorPipeline(n_members=2, n_epochs=2)
        outcome = pipeline.fit(regression_dataset, None, seed_bundle)
        members = outcome.model
        manual = np.mean([m.predict(regression_dataset.X) for m in members], axis=0)
        np.testing.assert_allclose(pipeline._predict(members, regression_dataset.X), manual)

    def test_members_differ(self, regression_dataset, seed_bundle):
        pipeline = EnsembleMLPRegressorPipeline(n_members=2, n_epochs=2)
        members = pipeline.fit(regression_dataset, None, seed_bundle).model
        assert not np.allclose(members[0].weights[0], members[1].weights[0])

    def test_invalid_member_count(self):
        with pytest.raises(ValueError):
            EnsembleMLPRegressorPipeline(n_members=0)

    def test_default_metric_is_pearson(self):
        assert EnsembleMLPRegressorPipeline().metric_name == "pearson"
