"""Tests for the MLP network, including gradient checks."""

import numpy as np
import pytest

from repro.pipelines.nn.network import MLPNetwork


def _numeric_gradients(network, X, y, eps=1e-6):
    """Finite-difference gradients for every parameter of the network."""
    gradients = []
    for param in network.parameters():
        grad = np.zeros_like(param)
        it = np.nditer(param, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = param[idx]
            param[idx] = original + eps
            loss_plus, _ = network.loss_and_gradients(X, y)
            param[idx] = original - eps
            loss_minus, _ = network.loss_and_gradients(X, y)
            param[idx] = original
            grad[idx] = (loss_plus - loss_minus) / (2 * eps)
            it.iternext()
        gradients.append(grad)
    return gradients


class TestForward:
    def test_output_shape_classification(self, rng):
        net = MLPNetwork([4, 6, 3], init_rng=rng)
        output, activations, masks = net.forward(rng.normal(size=(7, 4)))
        assert output.shape == (7, 3)
        assert len(activations) == 2
        assert len(masks) == 1

    def test_predict_proba_rows_sum_to_one(self, rng):
        net = MLPNetwork([4, 6, 3], init_rng=rng)
        probs = net.predict_proba(rng.normal(size=(5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_regression_shape(self, rng):
        net = MLPNetwork([4, 6, 1], task_type="regression", init_rng=rng)
        assert net.predict(rng.normal(size=(5, 4))).shape == (5,)

    def test_predict_proba_rejected_for_regression(self, rng):
        net = MLPNetwork([4, 2, 1], task_type="regression", init_rng=rng)
        with pytest.raises(ValueError):
            net.predict_proba(rng.normal(size=(3, 4)))

    def test_dropout_only_active_with_rng(self, rng):
        net = MLPNetwork([4, 32, 2], dropout_rate=0.5, init_rng=rng)
        X = rng.normal(size=(6, 4))
        eval_out, _, _ = net.forward(X)
        eval_out2, _, _ = net.forward(X)
        np.testing.assert_array_equal(eval_out, eval_out2)
        train_out, _, masks = net.forward(X, dropout_rng=np.random.default_rng(0))
        assert np.any(masks[0] == 0)


class TestGradients:
    def test_classification_gradient_check(self, rng):
        net = MLPNetwork([3, 5, 2], activation="tanh", init_rng=rng)
        X = rng.normal(size=(6, 3))
        y = rng.integers(0, 2, size=6)
        _, analytic = net.loss_and_gradients(X, y)
        numeric = _numeric_gradients(net, X, y)
        for a, n in zip(analytic, numeric):
            np.testing.assert_allclose(a, n, atol=1e-5)

    def test_regression_gradient_check(self, rng):
        net = MLPNetwork([3, 4, 1], activation="tanh", task_type="regression", init_rng=rng)
        X = rng.normal(size=(5, 3))
        y = rng.normal(size=5)
        _, analytic = net.loss_and_gradients(X, y)
        numeric = _numeric_gradients(net, X, y)
        for a, n in zip(analytic, numeric):
            np.testing.assert_allclose(a, n, atol=1e-5)


class TestConstruction:
    def test_invalid_task_type(self, rng):
        with pytest.raises(ValueError):
            MLPNetwork([2, 2], task_type="ranking", init_rng=rng)

    def test_invalid_activation(self, rng):
        with pytest.raises(ValueError):
            MLPNetwork([2, 2], activation="swish", init_rng=rng)

    def test_invalid_dropout(self, rng):
        with pytest.raises(ValueError):
            MLPNetwork([2, 2], dropout_rate=1.0, init_rng=rng)

    def test_init_rng_controls_weights(self):
        a = MLPNetwork([3, 4, 2], init_rng=np.random.default_rng(0))
        b = MLPNetwork([3, 4, 2], init_rng=np.random.default_rng(0))
        c = MLPNetwork([3, 4, 2], init_rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.weights[0], b.weights[0])
        assert not np.allclose(a.weights[0], c.weights[0])


class TestPerturbParameters:
    def test_zero_scale_noop(self, rng):
        net = MLPNetwork([3, 3, 2], init_rng=rng)
        before = [p.copy() for p in net.parameters()]
        net.perturb_parameters(0.0, rng)
        for b, p in zip(before, net.parameters()):
            np.testing.assert_array_equal(b, p)

    def test_small_scale_changes_parameters(self, rng):
        net = MLPNetwork([3, 3, 2], init_rng=rng)
        before = [p.copy() for p in net.parameters()]
        net.perturb_parameters(1e-3, rng)
        assert any(not np.allclose(b, p) for b, p in zip(before, net.parameters()))

    def test_negative_scale_rejected(self, rng):
        net = MLPNetwork([3, 3, 2], init_rng=rng)
        with pytest.raises(ValueError):
            net.perturb_parameters(-1.0, rng)
