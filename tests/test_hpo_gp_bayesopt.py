"""Tests for the Gaussian process and Bayesian optimization."""

import numpy as np
import pytest

from repro.hpo.acquisition import expected_improvement, upper_confidence_bound
from repro.hpo.bayesopt import BayesianOptimization
from repro.hpo.gp import GaussianProcess, rbf_kernel
from repro.hpo.space import SearchSpace, UniformDimension


class TestRBFKernel:
    def test_diagonal_is_signal_variance(self):
        X = np.array([[0.1, 0.2], [0.5, 0.5]])
        K = rbf_kernel(X, X, length_scale=0.3, signal_variance=2.0)
        np.testing.assert_allclose(np.diag(K), 2.0)

    def test_decays_with_distance(self):
        a = np.array([[0.0]])
        assert rbf_kernel(a, np.array([[0.1]]))[0, 0] > rbf_kernel(a, np.array([[0.9]]))[0, 0]

    def test_symmetric(self, rng):
        X = rng.random((5, 3))
        K = rbf_kernel(X, X)
        np.testing.assert_allclose(K, K.T)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((1, 1)), np.zeros((1, 1)), length_scale=0.0)


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        X = rng.random((15, 1))
        y = np.sin(4 * X[:, 0])
        gp = GaussianProcess(length_scale=0.2, noise_variance=1e-6).fit(X, y)
        mean, _ = gp.predict(X)
        np.testing.assert_allclose(mean, y, atol=1e-2)

    def test_uncertainty_larger_away_from_data(self, rng):
        X = rng.uniform(0.0, 0.4, size=(10, 1))
        y = np.cos(X[:, 0])
        gp = GaussianProcess(length_scale=0.1).fit(X, y)
        _, std_near = gp.predict(np.array([[0.2]]))
        _, std_far = gp.predict(np.array([[0.95]]))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 1)), np.zeros(2))

    def test_target_normalization_recovers_offset(self, rng):
        X = rng.random((20, 1))
        y = 100.0 + 0.1 * X[:, 0]
        gp = GaussianProcess(length_scale=0.3).fit(X, y)
        mean, _ = gp.predict(np.array([[0.5]]))
        assert abs(mean[0] - 100.05) < 1.0


class TestAcquisition:
    def test_expected_improvement_positive_when_mean_below_best(self):
        ei = expected_improvement(np.array([0.0]), np.array([0.1]), best_value=1.0)
        assert ei[0] > 0

    def test_expected_improvement_zero_when_hopeless(self):
        ei = expected_improvement(np.array([10.0]), np.array([1e-9]), best_value=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_ucb_prefers_uncertain_points(self):
        scores = upper_confidence_bound(np.array([1.0, 1.0]), np.array([0.1, 1.0]))
        assert scores[1] > scores[0]


class TestBayesianOptimization:
    def _space(self):
        return SearchSpace({"x": UniformDimension(0.0, 1.0)})

    def test_beats_random_search_on_smooth_function(self):
        def objective(config):
            return (config["x"] - 0.73) ** 2

        bo = BayesianOptimization(n_initial_points=4, n_candidates=128)
        result = bo.optimize(objective, self._space(), budget=20, random_state=0)
        assert result.best_value < 1e-2

    def test_initial_points_are_random(self):
        bo = BayesianOptimization(n_initial_points=3)
        seen = []

        def objective(config):
            seen.append(config["x"])
            return config["x"]

        bo.optimize(objective, self._space(), budget=3, random_state=0)
        assert len(set(np.round(seen, 6))) == 3

    def test_reproducible(self):
        def objective(config):
            return abs(config["x"] - 0.2)

        a = BayesianOptimization().optimize(objective, self._space(), budget=10, random_state=5)
        b = BayesianOptimization().optimize(objective, self._space(), budget=10, random_state=5)
        assert a.best_config == b.best_config

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BayesianOptimization(n_initial_points=0)
