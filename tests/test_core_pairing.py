"""Tests for paired measurements and the end-to-end comparison workflow."""

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkProcess
from repro.core.pairing import (
    compare_pipelines,
    paired_measurements,
    paired_seed_bundles,
)
from repro.core.significance import SignificanceConclusion
from repro.pipelines.mlp import MLPClassifierPipeline


class TestPairedSeedBundles:
    def test_count(self):
        assert len(paired_seed_bundles(7, random_state=0)) == 7

    def test_randomized_sources_differ_across_pairs(self):
        bundles = paired_seed_bundles(5, randomize="data", random_state=0)
        data_seeds = {b.seed_for("data") for b in bundles}
        init_seeds = {b.seed_for("init") for b in bundles}
        assert len(data_seeds) == 5
        assert len(init_seeds) == 1

    def test_all_subset_randomizes_learning_sources(self):
        bundles = paired_seed_bundles(4, randomize="all", random_state=0)
        assert len({b.seed_for("order") for b in bundles}) == 4
        assert len({b.seed_for("hopt") for b in bundles}) == 1


class TestPairedMeasurements:
    def test_shapes(self, classification_process, hard_process):
        scores = paired_measurements(
            classification_process,
            classification_process,
            4,
            run_hpo=False,
            random_state=0,
        )
        assert scores.scores_a.shape == scores.scores_b.shape == (4,)

    def test_same_process_gives_identical_paired_scores(self, classification_process):
        scores = paired_measurements(
            classification_process,
            classification_process,
            3,
            run_hpo=False,
            random_state=0,
        )
        np.testing.assert_array_equal(scores.scores_a, scores.scores_b)
        np.testing.assert_array_equal(scores.differences(), 0.0)

    def test_explicit_hparams_forwarded(self, classification_process):
        hparams = classification_process.pipeline.default_hparams()
        scores = paired_measurements(
            classification_process,
            classification_process,
            2,
            hparams_a=hparams,
            hparams_b=hparams,
            run_hpo=False,
            random_state=0,
        )
        assert scores.scores_a.shape == (2,)


class TestComparePipelines:
    def test_strong_vs_weak_pipeline(self, hard_dataset):
        strong = BenchmarkProcess(
            hard_dataset, MLPClassifierPipeline(hidden_sizes=(32,), n_epochs=10), hpo_budget=2
        )
        weak = BenchmarkProcess(
            hard_dataset,
            MLPClassifierPipeline(hidden_sizes=(1,), n_epochs=1, name="weak"),
            hpo_budget=2,
        )
        report, scores = compare_pipelines(strong, weak, k=10, random_state=0)
        assert report.p_a_gt_b > 0.6
        assert scores.scores_a.mean() > scores.scores_b.mean()

    def test_identical_pipelines_not_meaningful(self, hard_dataset):
        a = BenchmarkProcess(
            hard_dataset, MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=3), hpo_budget=2
        )
        b = BenchmarkProcess(
            hard_dataset, MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=3), hpo_budget=2
        )
        report, _ = compare_pipelines(a, b, k=8, random_state=0)
        assert report.conclusion != SignificanceConclusion.SIGNIFICANT_AND_MEANINGFUL

    def test_default_k_is_noether_sample_size(self, hard_dataset):
        a = BenchmarkProcess(
            hard_dataset, MLPClassifierPipeline(hidden_sizes=(4,), n_epochs=1), hpo_budget=2
        )
        report, scores = compare_pipelines(a, a, gamma=0.75, random_state=0)
        assert scores.scores_a.shape == (29,)
        assert report.n_pairs == 29
