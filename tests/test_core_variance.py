"""Tests for the variance decomposition and estimator-quality studies."""

import numpy as np
import pytest

from repro.core.variance import (
    EstimatorQualityStudy,
    VarianceDecomposition,
    estimator_standard_error_curve,
    hpo_variance_study,
    variance_decomposition_study,
)
from repro.core.sources import VarianceSource
from repro.hpo.random_search import RandomSearch


class TestVarianceDecompositionStudy:
    def test_sources_present(self, hard_process):
        decomposition = variance_decomposition_study(
            hard_process,
            sources=(VarianceSource.DATA, VarianceSource.INIT),
            n_seeds=4,
            random_state=0,
        )
        assert set(decomposition.stds) == {"data", "init", "numerical"}
        assert all(std >= 0 for std in decomposition.stds.values())

    def test_scores_shape(self, hard_process):
        decomposition = variance_decomposition_study(
            hard_process, sources=(VarianceSource.DATA,), n_seeds=5, random_state=0
        )
        assert decomposition.scores["data"].shape == (5,)

    def test_data_variance_positive(self, hard_process):
        decomposition = variance_decomposition_study(
            hard_process, sources=(VarianceSource.DATA,), n_seeds=6, random_state=0
        )
        assert decomposition.stds["data"] > 0

    def test_relative_to_reference(self):
        decomposition = VarianceDecomposition(
            task_name="t", stds={"data": 0.02, "init": 0.01}
        )
        relative = decomposition.relative_to("data")
        assert relative["init"] == pytest.approx(0.5)

    def test_relative_to_missing_reference(self):
        with pytest.raises(KeyError):
            VarianceDecomposition(task_name="t", stds={"init": 0.1}).relative_to("data")

    def test_rows_contain_relative_column(self, hard_process):
        decomposition = variance_decomposition_study(
            hard_process, sources=(VarianceSource.DATA,), n_seeds=3, random_state=0
        )
        rows = decomposition.as_rows()
        assert all("relative_to_data" in row for row in rows)


class TestHpoVarianceStudy:
    def test_returns_scores_per_algorithm(self, hard_process):
        results = hpo_variance_study(
            hard_process, {"random_search": RandomSearch()}, n_repetitions=3, random_state=0
        )
        assert set(results) == {"random_search"}
        assert results["random_search"].shape == (3,)

    def test_restores_original_algorithm(self, hard_process):
        original = hard_process.hpo_algorithm
        hpo_variance_study(
            hard_process, {"random_search": RandomSearch()}, n_repetitions=2, random_state=0
        )
        assert hard_process.hpo_algorithm is original


class TestEstimatorStandardErrorCurve:
    def test_iid_rows_match_sigma_over_sqrt_k(self, rng):
        # For i.i.d. measurements the standard error should follow sigma/sqrt(k).
        matrix = rng.normal(0.0, 1.0, size=(400, 50))
        curve = estimator_standard_error_curve(matrix, [1, 4, 16, 49])
        expected = 1.0 / np.sqrt(np.array([1, 4, 16, 49]))
        np.testing.assert_allclose(curve, expected, rtol=0.25)

    def test_correlated_rows_plateau(self, rng):
        shared = rng.normal(size=(200, 1))
        matrix = shared + 0.1 * rng.normal(size=(200, 50))
        curve = estimator_standard_error_curve(matrix, [1, 10, 50])
        # Standard error barely improves because measurements are correlated.
        assert curve[-1] > 0.5 * curve[0]

    def test_k_larger_than_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            estimator_standard_error_curve(rng.normal(size=(3, 5)), [6])

    def test_requires_multiple_repetitions(self, rng):
        with pytest.raises(ValueError):
            estimator_standard_error_curve(rng.normal(size=(1, 5)), [2])

    def test_cumsum_fast_path_matches_naive_recomputation(self, rng):
        # Regression guard for the O(n·k_max²) -> O(n·k_max) rewrite: the
        # single cumulative-sum pass must agree with re-averaging each
        # prefix from scratch.
        matrix = rng.normal(0.3, 0.05, size=(37, 23))
        ks = [1, 2, 3, 7, 11, 23]
        naive = np.array(
            [float(np.std(matrix[:, :k].mean(axis=1), ddof=1)) for k in ks]
        )
        np.testing.assert_allclose(
            estimator_standard_error_curve(matrix, ks), naive, rtol=1e-12
        )

    def test_empty_ks_gives_empty_curve(self, rng):
        assert estimator_standard_error_curve(rng.normal(size=(3, 5)), []).size == 0

    def test_unsorted_and_repeated_ks_preserved(self, rng):
        matrix = rng.normal(size=(10, 8))
        curve = estimator_standard_error_curve(matrix, [5, 2, 5])
        assert curve.shape == (3,)
        assert curve[0] == curve[2]


class TestEstimatorQualityStudy:
    def test_produces_all_variants(self, hard_process):
        study = EstimatorQualityStudy(subsets=("init", "all"), n_repetitions=2, k_max=3)
        results = study.run(hard_process, random_state=0)
        assert set(results) == {"IdealEst", "FixHOptEst(init)", "FixHOptEst(all)"}
        for result in results.values():
            assert result.score_matrix.shape == (2, 3)

    def test_mse_decomposition_available(self, hard_process):
        study = EstimatorQualityStudy(subsets=("init",), n_repetitions=2, k_max=3)
        results = study.run(hard_process, random_state=0)
        decomposition = results["FixHOptEst(init)"].mse()
        assert np.isfinite(decomposition.mse)
