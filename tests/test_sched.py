"""Tests for the distributed work-queue scheduler (repro.sched).

Queue invariants are pinned at three levels:

* **protocol** — claim exclusivity under thread races, lease expiry and
  stealing, exactly-once commit (a stale claim can never double-commit),
  dependency gating and priority order, bounded retries for transient
  failures, all property-tested over random task graphs with simulated
  workers — and all parameterized over both queue backends (the
  filesystem rename/lease store and the transactional sqlite store),
  which must be behaviourally indistinguishable through ``TaskQueue``;
* **system** — K real workers (threads and subprocesses) cooperatively
  executing a suite against one shared cache dir produce a
  ``SuiteResult`` bitwise-identical to the in-process path, including
  after a worker is SIGKILLed mid-task (its leased tasks are stolen and
  completed), on both backends;
* **spec** — ``priority``/``depends_on`` round-trip through the manifest
  JSON, ``schedule_order`` is a priority-respecting topological order,
  and dependency cycles are rejected at ``SuiteSpec.validate()`` with an
  error naming the offending member.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.api import Session, StudySpec, SuiteSpec
from repro.sched import (
    Coordinator,
    SqliteBackend,
    TaskQueue,
    TaskRecord,
    Worker,
)
from repro.sched.backend import retry_not_before

ANALYTIC = StudySpec(study="sample_size", params={"gammas": [0.7]})

# The canonical three-member suite and row canonicalizer live in
# conftest, shared with test_suite/test_serve.
from suite_fixtures import SUITE_MEMBERS as MEMBERS, canonical_rows, make_suite

_rows = canonical_rows


def _suite(directory, **kwargs) -> SuiteSpec:
    return make_suite(directory, name="sched-suite", **kwargs)


def _reference_rows(tmp_path):
    """In-process reference run of MEMBERS (the bitwise ground truth)."""
    suite = _suite(tmp_path / "reference")
    with Session.for_suite(suite) as session:
        reference = session.run_suite(suite)
    return {name: _rows(reference[name]) for name in suite.names}


def _tasks(graph, *, priorities=None):
    """TaskRecords for a {member: deps} graph (insertion order = plan order)."""
    priorities = priorities or {}
    return [
        TaskRecord(
            id=member,
            member=member,
            spec=ANALYTIC,
            priority=priorities.get(member, 0),
            depends_on=tuple(deps),
            index=index,
        )
        for index, (member, deps) in enumerate(graph.items())
    ]


def _queue_suite(graph):
    return SuiteSpec(
        name="q", specs=[(member, ANALYTIC) for member in graph]
    )


@pytest.fixture(params=["fs", "sqlite"])
def queue_backend(request):
    """Protocol tests run once per backend: the two stores must be
    behaviourally indistinguishable through ``TaskQueue``."""
    return request.param


def _make_queue(tmp_path, backend, **kwargs):
    kwargs.setdefault("lease_seconds", 30)
    return TaskQueue(str(tmp_path / "q"), backend=backend, **kwargs)


@pytest.fixture(scope="session")
def reference_rows(tmp_path_factory):
    """One in-process reference run of MEMBERS shared by every bitwise
    comparison (the ground truth is backend-independent by construction)."""
    return _reference_rows(tmp_path_factory.mktemp("reference"))


# ----------------------------------------------------------------------
# Protocol: claims, leases, stealing, exactly-once commit
# ----------------------------------------------------------------------
class TestTaskQueueProtocol:
    def test_claim_is_exclusive_under_races(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"solo": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        task = queue.plan()[0]
        barrier = threading.Barrier(8)
        claims = []

        def contender():
            barrier.wait()
            claim = queue.claim(task, worker="racer")
            if claim is not None:
                claims.append(claim)

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(claims) == 1
        assert queue.snapshot().running.keys() == {"solo"}

    def test_lease_expiry_enables_steal_and_blocks_stale_commit(
        self, tmp_path, queue_backend
    ):
        queue = _make_queue(tmp_path, queue_backend, lease_seconds=0.2)
        graph = {"solo": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        task = queue.plan()[0]
        stale = queue.claim(task, worker="crasher")
        assert stale is not None
        # Within the lease the task is invisible to other workers.
        assert queue.claimable() == []
        time.sleep(0.25)
        # Expired: the task is claimable again, and the steal wins.
        assert [t.id for t in queue.claimable()] == ["solo"]
        thief = queue.claim(task, worker="thief")
        assert thief is not None
        # The crashed worker wakes up: its heartbeat and commit both fail.
        assert not queue.heartbeat(stale)
        assert not queue.commit(stale, {"who": "stale"})
        # The thief commits exactly once; the marker cannot be overwritten.
        assert queue.commit(thief, {"who": "thief"})
        assert queue.load_record("solo") == {"who": "thief"}
        state = queue.snapshot()
        assert state.done == {"solo"} and not state.running
        assert queue.complete()

    def test_dependency_gating_and_priority_order(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"low": (), "high": (), "gated": ("low",)}
        queue.create(
            _queue_suite(graph), _tasks(graph, priorities={"high": 5})
        )
        # 'gated' is invisible until 'low' commits; 'high' outranks 'low'.
        assert [t.id for t in queue.claimable()] == ["high", "low"]
        low = next(t for t in queue.plan() if t.id == "low")
        claim = queue.claim(low, worker="w")
        assert queue.commit(claim, {"rows": []})
        assert [t.id for t in queue.claimable()] == ["high", "gated"]

    def test_failed_dependency_blocks_dependents_but_completes(
        self, tmp_path, queue_backend
    ):
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"boom": (), "after": ("boom",), "free": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        boom = next(t for t in queue.plan() if t.id == "boom")
        claim = queue.claim(boom, worker="w")
        assert queue.fail(claim, "ValueError: synthetic")
        # 'after' can never run, 'free' still can; once 'free' commits the
        # queue is complete (workers with --exit-when-done terminate).
        assert [t.id for t in queue.claimable()] == ["free"]
        assert not queue.complete()
        free = next(t for t in queue.plan() if t.id == "free")
        assert queue.commit(queue.claim(free, worker="w"), {"rows": []})
        assert queue.complete()
        assert "synthetic" in queue.load_error("boom")

    def test_failed_shard_dooms_siblings_out_of_claimable(
        self, tmp_path, queue_backend
    ):
        # One shard of a member fails deterministically: the member can
        # never assemble, so its surviving shards must stop being claimed
        # (they would burn compute for a result the run already discarded)
        # and the queue must still reach completion.
        queue = _make_queue(tmp_path, queue_backend)
        tasks = [
            TaskRecord(id="m@0", member="m", spec=ANALYTIC, index=0),
            TaskRecord(id="m@1", member="m", spec=ANALYTIC, index=1),
        ]
        queue.create(SuiteSpec(name="q", specs=[("m", ANALYTIC)]), tasks)
        claim = queue.claim(tasks[0], worker="w")
        assert queue.fail(claim, "ValueError: synthetic")
        assert queue.claimable() == []
        assert queue.complete()

    def test_release_requeues_and_resume_create_keeps_completions(
        self, tmp_path, queue_backend
    ):
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"a": (), "b": ()}
        suite = _queue_suite(graph)
        tasks = _tasks(graph)
        queue.create(suite, tasks)
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.release(claim)
        assert queue.snapshot().pending == {"a", "b"}
        # Identical plan re-created with keep_completed (the resume path):
        # a no-op — done state preserved, no marker rewritten.
        done = queue.claim(queue.plan()[0], worker="w")
        assert queue.commit(done, {"rows": []})
        queue.create(suite, tasks, keep_completed=True)
        state = queue.snapshot()
        assert state.done == {"a"} and state.pending == {"b"}

    def test_fresh_create_wipes_same_plan_completions(self, tmp_path, queue_backend):
        # Without keep_completed (a no-resume re-run), an identical idle
        # queue is rebuilt: every task runs again, matching the
        # in-process no-resume contract.
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"a": ()}
        suite = _queue_suite(graph)
        tasks = _tasks(graph)
        queue.create(suite, tasks)
        assert queue.commit(queue.claim(queue.plan()[0], worker="w"), {"rows": []})
        queue.create(suite, tasks)
        state = queue.snapshot()
        assert state.done == set() and state.pending == {"a"}

    def test_changed_plan_rebuilds_idle_queue(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"a": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.commit(claim, {"rows": []})
        changed = {"a": (), "b": ()}
        queue.create(_queue_suite(changed), _tasks(changed))
        state = queue.snapshot()
        # Old completion is gone (the old plan's results are meaningless
        # for a changed plan) and both tasks are pending again.
        assert state.done == set() and state.pending == {"a", "b"}

    def test_changed_plan_refused_while_leased(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend)
        graph = {"a": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        assert queue.claim(queue.plan()[0], worker="w") is not None
        changed = {"a": (), "b": ()}
        with pytest.raises(RuntimeError, match="still leased"):
            queue.create(_queue_suite(changed), _tasks(changed))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_simulated_fleet_commits_every_task_exactly_once(self, data, tmp_path_factory):
        """Random DAG + racing simulated workers with crash injection:
        every task commits exactly once, dependencies always commit before
        dependents, and the queue reaches completion — on a randomly drawn
        backend, so both stores face the same adversarial schedules."""
        backend = data.draw(st.sampled_from(["fs", "sqlite"]), label="backend")
        n_tasks = data.draw(st.integers(min_value=1, max_value=6), label="n_tasks")
        members = [f"t{i}" for i in range(n_tasks)]
        graph = {
            member: tuple(
                dep
                for dep in members[:index]
                if data.draw(st.booleans(), label=f"edge-{dep}-{member}")
            )
            for index, member in enumerate(members)
        }
        priorities = {
            member: data.draw(
                st.integers(min_value=-2, max_value=2), label=f"prio-{member}"
            )
            for member in members
        }
        crashy = {
            member: data.draw(st.booleans(), label=f"crash-{member}")
            for member in members
        }
        directory = tmp_path_factory.mktemp("fleet")
        queue = TaskQueue(
            str(directory / "q"), lease_seconds=0.05, backend=backend
        )
        queue.create(_queue_suite(graph), _tasks(graph, priorities=priorities))
        commits = []
        commit_lock = threading.Lock()
        crashed_once = set()

        def fleet_worker(worker_id):
            idle = 0
            while idle < 200:
                state = queue.snapshot()
                if queue.complete(state):
                    return
                progressed = False
                for task in queue.claimable(state):
                    claim = queue.claim(task, worker=worker_id, state=state)
                    if claim is None:
                        continue
                    progressed = True
                    with commit_lock:
                        crash = crashy[task.id] and task.id not in crashed_once
                        if crash:
                            crashed_once.add(task.id)
                    if crash:
                        break  # abandon the claim: no heartbeat, no commit
                    done_before = queue.snapshot().done
                    if queue.commit(claim, {"task": task.id}):
                        with commit_lock:
                            commits.append((task.id, frozenset(done_before)))
                    break
                if not progressed:
                    idle += 1
                    time.sleep(0.01)

        threads = [
            threading.Thread(target=fleet_worker, args=(f"w{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert queue.complete()
        committed = [task_id for task_id, _ in commits]
        assert sorted(committed) == sorted(members)  # exactly once each
        for task_id, done_before in commits:
            assert set(graph[task_id]) <= done_before, (
                f"{task_id} committed before its dependencies {graph[task_id]}"
            )


# ----------------------------------------------------------------------
# Protocol: bounded retries
# ----------------------------------------------------------------------
class TestRetryLifecycle:
    def test_transient_failure_requeues_with_attempts_until_exhausted(
        self, tmp_path, queue_backend
    ):
        # retry_base_seconds=0: this test exercises the attempts budget,
        # not the backoff gate (TestRetryBackoff covers that), so retried
        # tasks must be claimable immediately.
        queue = _make_queue(
            tmp_path, queue_backend, max_attempts=3, retry_base_seconds=0
        )
        graph = {"flaky": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        for attempt in range(2):
            claim = queue.claim(queue.claimable()[0], worker="w")
            assert claim.attempts == attempt
            assert queue.fail(claim, "OSError: blip", transient=True) == "retried"
            state = queue.snapshot(detail=True)
            assert state.pending == {"flaky"} and not state.failed
            assert state.attempts["flaky"] == attempt + 1
        # Third (= max_attempts) execution fails too: the budget is spent.
        claim = queue.claim(queue.claimable()[0], worker="w")
        assert claim.attempts == 2
        assert queue.fail(claim, "OSError: blip", transient=True) == "failed"
        state = queue.snapshot(detail=True)
        assert state.failed == {"flaky"} and state.attempts["flaky"] == 3
        assert "blip" in queue.load_error("flaky")
        assert queue.complete()

    def test_deterministic_failure_parks_on_first_attempt(
        self, tmp_path, queue_backend
    ):
        queue = _make_queue(tmp_path, queue_backend, max_attempts=3)
        graph = {"boom": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        claim = queue.claim(queue.claimable()[0], worker="w")
        # transient=False (the default): retrying would raise identically.
        assert queue.fail(claim, "ValueError: bad params") == "failed"
        state = queue.snapshot(detail=True)
        assert state.failed == {"boom"} and state.attempts["boom"] == 1
        assert "bad params" in queue.load_error("boom")

    def test_steals_do_not_consume_the_retry_budget(
        self, tmp_path, queue_backend
    ):
        # Crash recovery must stay unbounded: a task bounced between dying
        # workers is the lease's business, not the retry counter's.
        queue = _make_queue(tmp_path, queue_backend, lease_seconds=0.1, max_attempts=2)
        graph = {"solo": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        for _ in range(4):  # more abandonments than max_attempts
            task = queue.plan()[0]
            assert queue.claim(task, worker="crasher") is not None
            time.sleep(0.15)  # abandon: no heartbeat, lease expires
        claim = queue.claim(queue.plan()[0], worker="survivor")
        assert claim is not None and claim.attempts == 0
        assert queue.commit(claim, {"rows": []})
        assert queue.snapshot().done == {"solo"}

    def test_backoff_gate_defers_then_admits_a_retry(
        self, tmp_path, queue_backend
    ):
        # The full lifecycle on a short real clock: a transient failure
        # re-enqueues behind a durable not-before gate, claims are refused
        # while it holds (the task is pending, not failed), and the gate
        # admits the retry once it passes — on both backends.
        queue = _make_queue(
            tmp_path,
            queue_backend,
            max_attempts=3,
            retry_base_seconds=0.3,
            retry_cap_seconds=0.6,
        )
        graph = {"flaky": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.fail(claim, "OSError: blip", transient=True) == "retried"
        state = queue.snapshot(detail=True)
        assert state.pending == {"flaky"} and not state.failed
        assert state.not_before["flaky"] > time.time()
        assert queue.claim(queue.plan()[0], worker="w") is None
        # The status read path surfaces the remaining wait.
        assert queue.status()["backoff"]["flaky"] > 0
        assert not queue.complete()
        deadline = time.time() + 30
        claim = None
        while claim is None and time.time() < deadline:
            time.sleep(0.02)
            claim = queue.claim(queue.plan()[0], worker="w")
        assert claim is not None and claim.attempts == 1
        assert queue.commit(claim, {"rows": []})
        assert queue.snapshot().done == {"flaky"}

    def test_release_is_not_gated_by_backoff(self, tmp_path, queue_backend):
        # A graceful release is not a failure: the task must be claimable
        # again immediately, with no backoff residue from the claim.
        queue = _make_queue(
            tmp_path, queue_backend, retry_base_seconds=60.0
        )
        graph = {"solo": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.release(claim)
        assert queue.claim(queue.plan()[0], worker="w") is not None

    def test_stale_claim_cannot_fail_a_stolen_task(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend, lease_seconds=0.1)
        graph = {"solo": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        stale = queue.claim(queue.plan()[0], worker="crasher")
        time.sleep(0.15)
        thief = queue.claim(queue.plan()[0], worker="thief")
        assert thief is not None
        # The stale holder's failure report is void: the thief owns the
        # task's fate now ("" = lost, falsy — the pre-retry contract).
        assert queue.fail(stale, "OSError: late", transient=True) == ""
        assert queue.commit(thief, {"rows": []})
        assert queue.snapshot().done == {"solo"}


# ----------------------------------------------------------------------
# Retry backoff policy (pure function)
# ----------------------------------------------------------------------
class TestRetryBackoffPolicy:
    @given(
        task_id=st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz0123456789-@", min_size=1,
            max_size=24,
        ),
        attempts=st.integers(min_value=1, max_value=40),
        base=st.floats(min_value=0.01, max_value=10.0),
        cap=st.floats(min_value=0.01, max_value=300.0),
    )
    def test_gate_is_deterministic_and_inside_the_jitter_window(
        self, task_id, attempts, base, cap
    ):
        gate = retry_not_before(task_id, attempts, base=base, cap=cap, now=0.0)
        again = retry_not_before(
            task_id, attempts, base=base, cap=cap, now=0.0
        )
        assert gate == again  # seeded from (task id, attempt): no coin flips
        delay = min(cap, base * 2.0 ** (attempts - 1))
        assert delay / 2 <= gate <= delay

    def test_delay_doubles_up_to_the_cap(self):
        # Window midpoints, jitter aside: 2, 4, 8, ... then pinned at cap.
        windows = [
            retry_not_before("m@3", attempts, base=2.0, cap=16.0, now=0.0)
            for attempts in range(1, 8)
        ]
        for attempts, gate in enumerate(windows, start=1):
            delay = min(16.0, 2.0 * 2.0 ** (attempts - 1))
            assert delay / 2 <= gate <= delay
        # Beyond the cap the window stops growing entirely.
        assert windows[-1] == retry_not_before(
            "m@3", 7, base=2.0, cap=16.0, now=0.0
        )

    def test_distinct_tasks_spread_out(self):
        # The whole point of the jitter: a fleet that failed together
        # must not wake together.  20 shards of one member, same attempt,
        # all land at distinct points of the window.
        gates = {
            retry_not_before(f"member@{i}", 1, base=2.0, cap=60.0, now=0.0)
            for i in range(20)
        }
        assert len(gates) == 20

    def test_zero_base_disables_the_gate(self):
        assert retry_not_before("t", 3, base=0.0, cap=60.0, now=7.5) == 7.5
        assert retry_not_before("t", 0, base=2.0, cap=60.0, now=7.5) == 7.5


# ----------------------------------------------------------------------
# Backend specifics
# ----------------------------------------------------------------------
class TestBackendSpecifics:
    def test_filesystem_layout_is_preserved(self, tmp_path):
        # PR 5's on-disk contract, byte for byte: queues enqueued before
        # the backend seam existed must remain readable, and external
        # tooling that inspects the directory must keep working.
        queue = TaskQueue(str(tmp_path / "q"), lease_seconds=30, backend="fs")
        graph = {"a": (), "b": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        root = tmp_path / "q"
        for state_dir in ("pending", "running", "done", "failed", "results", "errors"):
            assert (root / state_dir).is_dir()
        assert (root / "plan.json").is_file()
        assert (root / "suite.json").is_file()
        marker = json.loads((root / "pending" / "a").read_text())
        assert marker == {"task": "a"}
        claim = queue.claim(queue.plan()[0], worker="w1")
        leases = list((root / "running").iterdir())
        assert [path.name.split("#")[0] for path in leases] == ["a"]
        stamp = json.loads(leases[0].read_text())
        assert stamp["task"] == "a" and stamp["worker"] == "w1"
        assert queue.commit(claim, {"rows": []})
        assert (root / "done" / "a").is_file()
        assert json.loads((root / "results" / "a.json").read_text()) == {"rows": []}
        # A fresh TaskQueue over the same directory reads it all back.
        reread = TaskQueue(str(root), lease_seconds=30)
        assert reread.snapshot().done == {"a"}
        assert reread.load_record("a") == {"rows": []}

    def test_sqlite_concurrent_writers_share_one_wal_database(self, tmp_path):
        # Many writers, each with its OWN connection (as separate worker
        # processes would be), hammering one WAL database: busy-timeout
        # absorbs lock contention, every task commits exactly once, and
        # no writer ever sees "database is locked".
        graph = {f"t{i}": () for i in range(12)}
        suite = _queue_suite(graph)
        enqueuer = _make_queue(tmp_path, "sqlite")
        enqueuer.create(suite, _tasks(graph))
        db_path = str(tmp_path / "queue.db")
        n_workers = 6
        commits = []
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_workers)

        def worker(worker_id):
            backend = SqliteBackend(db_path, "q", lease_seconds=30)
            queue = TaskQueue(str(tmp_path / "q"), backend=backend)
            barrier.wait()
            try:
                idle = 0
                while idle < 100:
                    state = queue.snapshot()
                    if queue.complete(state):
                        return
                    progressed = False
                    for task in queue.claimable(state):
                        claim = queue.claim(task, worker=worker_id, state=state)
                        if claim is None:
                            continue
                        progressed = True
                        if queue.commit(claim, {"task": task.id}):
                            with lock:
                                commits.append(task.id)
                        break
                    if not progressed:
                        idle += 1
                        time.sleep(0.005)
            except Exception as error:  # noqa: BLE001 - recorded for assert
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",))
            for i in range(n_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert sorted(commits) == sorted(graph)  # exactly once each
        assert enqueuer.complete()

    def test_sqlite_state_survives_reopen(self, tmp_path):
        # Durability across connections: a brand-new TaskQueue over the
        # same database (a worker on another host) sees identical state.
        queue = _make_queue(tmp_path, "sqlite")
        graph = {"a": (), "b": ()}
        queue.create(_queue_suite(graph), _tasks(graph))
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.commit(claim, {"rows": [1, 2]})
        reopened = _make_queue(tmp_path, "sqlite")
        state = reopened.snapshot()
        assert state.done == {"a"} and state.pending == {"b"}
        assert reopened.load_record("a") == {"rows": [1, 2]}
        assert [t.id for t in reopened.plan()] == ["a", "b"]

    def test_discover_finds_queues_on_both_backends(self, tmp_path):
        fs_queue = TaskQueue.for_suite(str(tmp_path), "alpha", backend="fs")
        sq_queue = TaskQueue.for_suite(str(tmp_path), "beta", backend="sqlite")
        graph = {"a": ()}
        for queue, name in ((fs_queue, "alpha"), (sq_queue, "beta")):
            suite = SuiteSpec(name=name, specs=[("a", ANALYTIC)])
            queue.create(suite, _tasks(graph))
        found = {
            (queue.backend.name, queue.suite_name)
            for queue in TaskQueue.discover(str(tmp_path))
        }
        assert found == {("fs", "alpha"), ("sqlite", "beta")}
        only_sqlite = TaskQueue.discover(str(tmp_path), backend="sqlite")
        assert [queue.suite_name for queue in only_sqlite] == ["beta"]


# ----------------------------------------------------------------------
# Spec: scheduling metadata
# ----------------------------------------------------------------------
class TestSchedulingSpec:
    def test_priority_and_depends_on_round_trip_inline_and_field(self):
        suite = SuiteSpec(
            name="s",
            specs=[("a", ANALYTIC), ("b", ANALYTIC), ("c", ANALYTIC)],
            priorities={"c": 7},
            depends_on={"b": ["a"]},
        )
        assert SuiteSpec.from_json(suite.to_json()) == suite
        payload = json.loads(suite.to_json())
        by_name = {entry["name"]: entry for entry in payload["specs"]}
        assert by_name["c"]["priority"] == 7
        assert by_name["b"]["depends_on"] == ["a"]
        assert "priority" not in by_name["a"]
        inline = SuiteSpec.from_dict(payload)
        assert inline.priorities == {"c": 7}
        assert inline.depends_on == {"b": ("a",)}

    def test_cycle_rejected_at_validate_with_member_name(self):
        suite = SuiteSpec(
            name="s",
            specs=[("a", ANALYTIC), ("b", ANALYTIC)],
            depends_on={"a": ["b"], "b": ["a"]},
        )
        with pytest.raises(ValueError, match="suite spec 'a'.*cycle"):
            suite.validate()
        with pytest.raises(ValueError, match="a -> b -> a|b -> a -> b"):
            suite.schedule_order()

    def test_self_dependency_is_a_cycle(self):
        suite = SuiteSpec(
            name="s", specs=[("a", ANALYTIC)], depends_on={"a": ["a"]}
        )
        with pytest.raises(ValueError, match="suite spec 'a'.*cycle"):
            suite.validate()

    def test_unknown_targets_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown member 'ghost'"):
            SuiteSpec(
                name="s", specs=[("a", ANALYTIC)], depends_on={"a": ["ghost"]}
            )
        with pytest.raises(ValueError, match="unknown suite members"):
            SuiteSpec(
                name="s", specs=[("a", ANALYTIC)], priorities={"ghost": 1}
            )

    def test_conflicting_inline_and_field_metadata_rejected(self):
        with pytest.raises(ValueError, match="both inline"):
            SuiteSpec(
                name="s",
                specs=[{"name": "a", "spec": ANALYTIC.to_dict(), "priority": 1}],
                priorities={"a": 2},
            )

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_schedule_order_is_topological_and_priority_greedy(self, data):
        n = data.draw(st.integers(min_value=1, max_value=7), label="n")
        members = [f"m{i}" for i in range(n)]
        depends = {
            member: [
                dep
                for dep in members[:index]
                if data.draw(st.booleans(), label=f"edge-{dep}-{member}")
            ]
            for index, member in enumerate(members)
        }
        priorities = {
            member: data.draw(
                st.integers(min_value=-3, max_value=3), label=f"p-{member}"
            )
            for member in members
        }
        suite = SuiteSpec(
            name="s",
            specs=[(member, ANALYTIC) for member in members],
            depends_on={k: v for k, v in depends.items() if v},
            priorities=priorities,
        )
        order = suite.schedule_order()
        assert sorted(order) == sorted(members)
        seen = set()
        position = {member: index for index, member in enumerate(members)}
        for index, member in enumerate(order):
            assert set(depends[member]) <= seen, "dependency ran after dependent"
            # Greedy priority: nothing runnable at this step outranked the
            # chosen member (or tied with an earlier manifest position).
            runnable = [
                other
                for other in members
                if other not in seen
                and set(depends[other]) <= seen
            ]
            chosen_key = (-priorities[member], position[member])
            assert chosen_key == min(
                (-priorities[other], position[other]) for other in runnable
            )
            seen.add(member)


# ----------------------------------------------------------------------
# System: real workers over a shared cache dir
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDistributedExecution:
    def test_three_worker_threads_match_in_process_bitwise(
        self, tmp_path, queue_backend, reference_rows
    ):
        reference = reference_rows
        suite = _suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            coordinator = Coordinator(
                session, suite, poll_seconds=0.05, queue_backend=queue_backend
            )
            coordinator.enqueue()
            workers = [
                Worker(str(tmp_path / "store"), poll_seconds=0.05)
                for _ in range(3)
            ]
            threads = [
                threading.Thread(
                    target=worker.run, kwargs={"exit_when_done": True}
                )
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            result = coordinator.run(participate=False, timeout=240)
            for thread in threads:
                thread.join(timeout=240)
        assert result.names == suite.names
        for name in suite.names:
            assert _rows(result[name]) == reference[name], name
            assert not result[name].replayed
        # Exactly-once: each of the 3 tasks committed by exactly one worker.
        committed = sum(worker.stats.committed for worker in workers)
        assert committed == len(suite)
        assert all(worker.stats.failed == 0 for worker in workers)

    def test_sharded_members_steal_at_shard_granularity(
        self, tmp_path, reference_rows
    ):
        reference = reference_rows
        suite = _suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            coordinator = Coordinator(
                session, suite, shard_members=True, poll_seconds=0.05
            )
            coordinator.enqueue()
            plan_ids = [task.id for task in coordinator.queue.plan()]
            # figC1's two gammas pre-shard into two independently stealable
            # tasks; single-valued members stay whole.
            assert "figC1-sample-size@0" in plan_ids
            assert "figC1-sample-size@1" in plan_ids
            assert "fig1-variance" in plan_ids
            result = coordinator.run(participate=True, timeout=240)
        for name in suite.names:
            assert _rows(result[name]) == reference[name], name

    def test_distributed_honors_priorities_and_dependencies(self, tmp_path):
        suite = _suite(
            tmp_path / "store",
            priorities={"figC1-sample-size": 10},
            depends_on={"fig2-binomial": ["fig1-variance"]},
        )
        events = []
        with Session.for_suite(suite) as session:
            result = session.run_suite(
                suite,
                distributed=True,
                poll_seconds=0.05,
                progress=lambda event, name, *rest: events.append((event, name)),
            )
        done_order = [name for event, name in events if event == "done"]
        assert done_order[0] == "figC1-sample-size"  # highest priority first
        assert done_order.index("fig1-variance") < done_order.index(
            "fig2-binomial"
        )
        assert result.names == suite.names  # canonical assembly order

    def test_resume_skips_queue_and_restores_native_attributes(
        self, tmp_path, queue_backend
    ):
        # Cold on the parameterized backend (raw pickles round-trip
        # through its commit/load_raw path), resume on the same one.
        suite = _suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            cold = session.run_suite(
                suite,
                distributed=True,
                poll_seconds=0.05,
                queue_backend=queue_backend,
            )
        with Session.for_suite(suite) as session:
            resumed = session.run_suite(
                suite,
                distributed=True,
                resume=True,
                poll_seconds=0.05,
                queue_backend=queue_backend,
            )
        assert resumed.replayed == suite.names
        for name in suite.names:
            assert _rows(resumed[name]) == _rows(cold[name]), name
        # Full fidelity: the variance member exposes its native result
        # class (not the rows-only stand-in), so study-specific attributes
        # survive the distributed round-trip.
        assert type(resumed["fig1-variance"].raw).__name__ == "VarianceStudyResult"
        assert resumed["fig1-variance"].raw.decompositions

    def test_watching_coordinator_survives_sibling_destroying_queue(
        self, tmp_path
    ):
        # Two coordinators on one run: the executing one finishes first,
        # mirrors results into completion records and destroys the spent
        # queue; the watching one must assemble the identical result from
        # those records instead of crashing on the vanished directory.
        suite = _suite(tmp_path / "store")
        with Session.for_suite(suite) as watch_session:
            watcher = Coordinator(watch_session, suite, poll_seconds=0.05)
            watcher.enqueue()
            box = {}

            def watch():
                box["result"] = watcher.run(participate=False, timeout=240)

            thread = threading.Thread(target=watch)
            thread.start()
            with Session.for_suite(suite) as run_session:
                runner = Coordinator(run_session, suite, poll_seconds=0.05)
                executed = runner.run(participate=True, timeout=240)
            thread.join(timeout=240)
        assert not thread.is_alive()
        watched = box["result"]
        for name in suite.names:
            assert _rows(watched[name]) == _rows(executed[name]), name

    def test_failed_task_surfaces_with_traceback_pointer(self, tmp_path):
        bad = SuiteSpec(
            name="sched-bad",
            specs=[
                ("ok", MEMBERS[2][1]),
                # n_seeds=0 passes registry validation (it's a valid name)
                # but raises inside the driver — a deterministic failure.
                ("boom", MEMBERS[0][1].with_params(n_seeds=0)),
            ],
            cache_dir=str(tmp_path / "store"),
        )
        with Session.for_suite(bad) as session:
            with pytest.raises(RuntimeError, match="boom"):
                session.run_suite(bad, distributed=True, poll_seconds=0.05)

    @pytest.mark.skipif(os.name != "posix", reason="SIGKILL semantics")
    def test_sigkilled_worker_tasks_are_stolen_and_completed(
        self, tmp_path, queue_backend, reference_rows
    ):
        reference = reference_rows
        suite = _suite(tmp_path / "store")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        with Session.for_suite(suite) as session:
            coordinator = Coordinator(
                session,
                suite,
                lease_seconds=1.0,
                poll_seconds=0.05,
                queue_backend=queue_backend,
            )
            coordinator.enqueue()
            victim = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    str(tmp_path / "store"),
                    "--lease-seconds",
                    "1",
                ],
                env=env,
                stderr=subprocess.DEVNULL,
            )
            try:
                deadline = time.time() + 120
                queue = coordinator.queue
                while time.time() < deadline and not queue.snapshot().running:
                    time.sleep(0.05)
                assert queue.snapshot().running, "victim never claimed a task"
            finally:
                victim.kill()
                victim.wait()
            stolen_from = set(queue.snapshot().running)
            result = coordinator.run(participate=True, timeout=240)
        assert stolen_from, "nothing was leased when the victim died"
        for name in suite.names:
            assert _rows(result[name]) == reference[name], name
        # The assembled run mirrored its results into completion records
        # and destroyed its spent queue (the fs directory is gone; the
        # sqlite rows are deleted).
        assert not coordinator.queue.exists()
        records = tmp_path / "store" / "suites" / suite.name
        for name in suite.names:
            assert (records / f"{name}.json").exists()


# ----------------------------------------------------------------------
# Worker lifecycle: retry classification and progress-coupled leases
# ----------------------------------------------------------------------
class _FlakySession:
    """Session stand-in that fails the first N runs, then delegates.

    ``close`` is a no-op: the inner session's owner closes it (same
    contract as a Worker's injected session).
    """

    def __init__(self, inner, error, n_failures=1):
        self.inner = inner
        self.error = error
        self.failures_left = n_failures

    def run(self, spec, **kwargs):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise self.error
        return self.inner.run(spec, **kwargs)

    def close(self):
        pass


def _single_task_queue(store, name, *, backend, **kwargs):
    suite = SuiteSpec(name=name, specs=[("m", ANALYTIC)], cache_dir=str(store))
    queue = TaskQueue.for_suite(str(store), name, backend=backend, **kwargs)
    queue.create(
        suite, [TaskRecord(id="m", member="m", spec=ANALYTIC, index=0)]
    )
    return queue


@pytest.mark.slow
class TestWorkerLifecycle:
    def test_transient_error_completes_on_a_later_attempt(
        self, tmp_path, queue_backend
    ):
        # Acceptance: an OSError on attempt 1 must not park the task —
        # it re-enqueues and a later attempt commits the real result.
        store = tmp_path / "store"
        queue = _single_task_queue(store, "flaky", backend=queue_backend)
        with Session(cache_dir=str(store)) as session:
            worker = Worker(
                str(store),
                queue_backend=queue_backend,
                poll_seconds=0.01,
                session=_FlakySession(session, OSError("synthetic blip")),
            )
            stats = worker.run(exit_when_done=True, timeout=240)
        assert stats.retried == 1 and stats.committed == 1
        assert stats.failed == 0
        state = queue.snapshot(detail=True)
        assert state.done == {"m"} and state.attempts["m"] == 1
        assert queue.load_record("m") is not None

    def test_deterministic_error_parks_exactly_once(
        self, tmp_path, queue_backend
    ):
        # Acceptance: a deterministic failure parks on the first attempt
        # (re-running would raise identically) with attempts recorded.
        store = tmp_path / "store"
        queue = _single_task_queue(store, "doomed", backend=queue_backend)
        with Session(cache_dir=str(store)) as session:
            worker = Worker(
                str(store),
                queue_backend=queue_backend,
                poll_seconds=0.01,
                session=_FlakySession(
                    session, ValueError("bad config"), n_failures=10
                ),
            )
            stats = worker.run(exit_when_done=True, timeout=240)
        assert stats.failed == 1 and stats.retried == 0
        assert stats.committed == 0
        state = queue.snapshot(detail=True)
        assert state.failed == {"m"} and state.attempts["m"] == 1
        assert "bad config" in queue.load_error("m")

    def test_transient_budget_exhaustion_parks_with_full_history(
        self, tmp_path, queue_backend
    ):
        store = tmp_path / "store"
        queue = _single_task_queue(
            store, "hopeless", backend=queue_backend, max_attempts=2
        )
        with Session(cache_dir=str(store)) as session:
            worker = Worker(
                str(store),
                queue_backend=queue_backend,
                max_attempts=2,
                poll_seconds=0.01,
                session=_FlakySession(
                    session, OSError("still down"), n_failures=10
                ),
            )
            stats = worker.run(exit_when_done=True, timeout=240)
        assert stats.retried == 1 and stats.failed == 1
        state = queue.snapshot(detail=True)
        assert state.failed == {"m"} and state.attempts["m"] == 2
        assert "still down" in queue.load_error("m")

    def test_stalled_task_loses_lease_and_is_stolen_by_healthy_worker(
        self, tmp_path, queue_backend
    ):
        # The progress-coupled heartbeat: a worker whose study hangs
        # (alive process, zero progress ticks) stops renewing its lease,
        # a healthy worker steals and completes the task, and the hung
        # worker's eventual outcome is discarded as lost — not committed,
        # not failed.
        store = tmp_path / "store"
        queue = _single_task_queue(
            store, "stall", backend=queue_backend, lease_seconds=0.4
        )
        release = threading.Event()
        claimed = threading.Event()

        class _HangingSession:
            def run(self, spec, **kwargs):
                claimed.set()
                # Blocks without ever emitting a progress tick.
                if not release.wait(timeout=240):
                    raise RuntimeError("never released")
                raise OSError("aborted after stall")

            def close(self):
                pass

        hung = Worker(
            str(store),
            queue_backend=queue_backend,
            lease_seconds=0.4,
            stall_seconds=0.2,
            poll_seconds=0.01,
            worker_id="hung",
            session=_HangingSession(),
        )
        hung_thread = threading.Thread(target=hung.step)
        hung_thread.start()
        try:
            assert claimed.wait(timeout=60), "hung worker never claimed"
            with Session(cache_dir=str(store)) as session:
                healthy = Worker(
                    str(store),
                    queue_backend=queue_backend,
                    lease_seconds=0.4,
                    poll_seconds=0.02,
                    worker_id="healthy",
                    session=session,
                )
                healthy_stats = healthy.run(exit_when_done=True, timeout=240)
        finally:
            release.set()
            hung_thread.join(timeout=60)
        assert not hung_thread.is_alive()
        assert healthy_stats.stolen == 1 and healthy_stats.committed == 1
        assert hung.stats.lost == 1
        assert hung.stats.failed == 0 and hung.stats.committed == 0
        assert queue.snapshot().done == {"m"}
        assert queue.load_record("m") is not None


# ----------------------------------------------------------------------
# Worker CLI
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestWorkerCLI:
    def test_worker_drains_an_enqueued_suite(self, tmp_path, capsys):
        suite = _suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            coordinator = Coordinator(session, suite, poll_seconds=0.05)
            coordinator.enqueue()
            assert (
                main(
                    [
                        "worker",
                        str(tmp_path / "store"),
                        "--exit-when-done",
                        "--timeout",
                        "240",
                    ]
                )
                == 0
            )
            err = capsys.readouterr().err
            assert "committed 3 task(s)" in err
            result = coordinator.run(participate=False, timeout=60)
        assert result.names == suite.names

    def test_worker_rejects_missing_cache_dir(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path / "nope")]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_run_suite_rejects_scheduler_knobs_without_distributed(
        self, tmp_path
    ):
        suite = _suite(tmp_path / "store")
        with Session.for_suite(suite) as session:
            with pytest.raises(ValueError, match="distributed=True"):
                session.run_suite(suite, shard_members=True)
            with pytest.raises(ValueError, match="timeout"):
                session.run_suite(suite, timeout=10.0)
            with pytest.raises(ValueError, match="queue_backend"):
                session.run_suite(suite, queue_backend="sqlite")
            with pytest.raises(ValueError, match="max_attempts"):
                session.run_suite(suite, max_attempts=5)
            with pytest.raises(ValueError, match="stall_seconds"):
                session.run_suite(suite, stall_seconds=60.0)

    def test_suite_scheduler_flags_require_distributed(self, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(_suite(tmp_path / "store").to_json())
        assert main(["suite", str(manifest), "--shard-members"]) == 2
        assert "--shard-members requires --distributed" in capsys.readouterr().err
        assert main(["suite", str(manifest), "--lease-seconds", "5"]) == 2
        assert "--lease-seconds requires --distributed" in capsys.readouterr().err
        assert main(["suite", str(manifest), "--queue-backend", "sqlite"]) == 2
        assert "--queue-backend requires --distributed" in capsys.readouterr().err
        assert main(["suite", str(manifest), "--max-attempts", "2"]) == 2
        assert "--max-attempts requires --distributed" in capsys.readouterr().err
        assert main(["suite", str(manifest), "--stall-seconds", "5"]) == 2
        assert "--stall-seconds requires --distributed" in capsys.readouterr().err
        assert (
            main(
                [
                    "suite",
                    str(manifest),
                    "--distributed",
                    "--lease-seconds",
                    "0",
                ]
            )
            == 2
        )
        assert "must be positive" in capsys.readouterr().err
        assert (
            main(
                [
                    "suite",
                    str(manifest),
                    "--distributed",
                    "--max-attempts",
                    "0",
                ]
            )
            == 2
        )
        assert "--max-attempts must be at least 1" in capsys.readouterr().err

    def test_queue_status_reports_both_backends(self, tmp_path, capsys):
        store = tmp_path / "store"
        for backend, name in (("fs", "alpha"), ("sqlite", "beta")):
            _single_task_queue(store, name, backend=backend)
        claimer = TaskQueue.for_suite(str(store), "alpha", backend="fs")
        assert claimer.claim(claimer.plan()[0], worker="w9") is not None
        assert main(["queue", str(store), "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        by_suite = {report["suite"]: report for report in reports}
        assert set(by_suite) == {"alpha", "beta"}
        assert by_suite["alpha"]["backend"] == "fs"
        assert by_suite["beta"]["backend"] == "sqlite"
        assert by_suite["alpha"]["running"] == 1
        assert by_suite["alpha"]["leases"][0]["worker"] == "w9"
        assert by_suite["beta"]["pending"] == 1 and by_suite["beta"]["tasks"] == 1
        # Human-readable rendering carries the same facts.
        assert main(["queue", str(store)]) == 0
        out = capsys.readouterr().out
        assert "alpha [fs]" in out and "beta [sqlite]" in out
        assert "running m" in out and "worker=w9" in out
        # Filters narrow by suite and by backend.
        assert main(["queue", str(store), "--suite", "beta", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [report["suite"] for report in reports] == ["beta"]
        assert (
            main(["queue", str(store), "--queue-backend", "fs", "--json"]) == 0
        )
        reports = json.loads(capsys.readouterr().out)
        assert [report["suite"] for report in reports] == ["alpha"]

    def test_queue_status_shows_failures_with_attempts(self, tmp_path, capsys):
        store = tmp_path / "store"
        queue = _single_task_queue(
            store, "bad", backend="sqlite", max_attempts=2,
            retry_base_seconds=0,
        )
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.fail(claim, "OSError: blip", transient=True) == "retried"
        claim = queue.claim(queue.plan()[0], worker="w")
        assert queue.fail(claim, "OSError: blip", transient=True) == "failed"
        assert main(["queue", str(store), "--json"]) == 0
        (report,) = json.loads(capsys.readouterr().out)
        assert report["failed"] == 1 and report["complete"] is True
        (failure,) = report["failed_tasks"]
        assert failure["attempts"] == 2
        assert failure["error"].startswith("OSError")
        assert main(["queue", str(store)]) == 0
        assert "attempts=2" in capsys.readouterr().out

    def test_queue_rejects_missing_cache_dir(self, tmp_path, capsys):
        assert main(["queue", str(tmp_path / "nope")]) == 2
        assert "no cache directory" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Shard affinity: workers prefer the member they last committed
# ----------------------------------------------------------------------
def _sharded_tasks():
    """Two members, two shards each, interleaved in plan order."""
    return [
        TaskRecord(
            id=f"{member}@{k}",
            member=member,
            spec=ANALYTIC,
            shard_key=f"k={k}",
            index=index,
        )
        for index, (member, k) in enumerate(
            [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        )
    ]


class TestShardAffinity:
    def test_prefer_member_front_runs_its_shards(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend)
        queue.create(
            SuiteSpec(name="q", specs=[("a", ANALYTIC), ("b", ANALYTIC)]),
            _sharded_tasks(),
        )
        # No preference: plan order.
        assert [t.id for t in queue.claimable()] == ["a@0", "b@0", "a@1", "b@1"]
        # Preference pulls the member's shards to the front; plan order
        # still holds within the preferred group and within the rest.
        assert [t.id for t in queue.claimable(prefer_member="b")] == [
            "b@0", "b@1", "a@0", "a@1",
        ]
        assert [t.id for t in queue.claimable(prefer_member="a")] == [
            "a@0", "a@1", "b@0", "b@1",
        ]

    def test_prefer_member_none_is_the_legacy_order(self, tmp_path, queue_backend):
        queue = _make_queue(tmp_path, queue_backend)
        queue.create(
            SuiteSpec(name="q", specs=[("a", ANALYTIC), ("b", ANALYTIC)]),
            _sharded_tasks(),
        )
        state = queue.snapshot()
        default = [t.id for t in queue.claimable(state)]
        explicit_none = [t.id for t in queue.claimable(state, prefer_member=None)]
        unknown = [t.id for t in queue.claimable(state, prefer_member="ghost")]
        assert default == explicit_none == unknown

    def test_priority_outranks_affinity(self, tmp_path, queue_backend):
        # Affinity is a tie-break *within* a priority tier, never a way to
        # starve higher-priority work.
        queue = _make_queue(tmp_path, queue_backend)
        tasks = [
            TaskRecord(id="cold@0", member="cold", spec=ANALYTIC, index=0),
            TaskRecord(
                id="hot", member="hot", spec=ANALYTIC, priority=5, index=1
            ),
            TaskRecord(id="cold@1", member="cold", spec=ANALYTIC, index=2),
        ]
        queue.create(
            SuiteSpec(name="q", specs=[("cold", ANALYTIC), ("hot", ANALYTIC)]),
            tasks,
        )
        assert [t.id for t in queue.claimable(prefer_member="cold")] == [
            "hot", "cold@0", "cold@1",
        ]

    def test_worker_sticks_to_last_committed_member(
        self, tmp_path, queue_backend
    ):
        # A worker that just committed a@0 claims a@1 next (sibling shard,
        # warm dataset/cache) even though b@0 precedes it in plan order.
        store = tmp_path / "store"
        suite = SuiteSpec(
            name="aff",
            specs=[("a", ANALYTIC), ("b", ANALYTIC)],
            cache_dir=str(store),
        )
        queue = TaskQueue.for_suite(str(store), "aff", backend=queue_backend)
        queue.create(suite, _sharded_tasks())
        with Session(cache_dir=str(store)) as session:
            worker = Worker(
                str(store),
                queue_backend=queue_backend,
                poll_seconds=0.01,
                session=session,
            )
            assert worker.step()
            assert worker._last_member[queue.key] == "a"
            assert worker.step()
        assert queue.snapshot().done == {"a@0", "a@1"}
        assert worker.stats.committed == 2
