"""Tests for random search, grid search and noisy grid search."""

import numpy as np
import pytest

from repro.hpo.base import HPOResult, Trial
from repro.hpo.grid import GridSearch, NoisyGridSearch
from repro.hpo.random_search import RandomSearch
from repro.hpo.space import LogUniformDimension, SearchSpace, UniformDimension


def _quadratic_space():
    return SearchSpace({"x": UniformDimension(-1.0, 1.0), "y": UniformDimension(-1.0, 1.0)})


def _quadratic(config):
    return (config["x"] - 0.3) ** 2 + (config["y"] + 0.2) ** 2


class TestHPOResult:
    def test_best_trial_selection(self):
        result = HPOResult(
            trials=[
                Trial({"x": 0.0}, 2.0, 0),
                Trial({"x": 1.0}, 0.5, 1),
                Trial({"x": 2.0}, 1.0, 2),
            ]
        )
        assert result.best_value == 0.5
        assert result.best_config == {"x": 1.0}

    def test_optimization_curve_monotone(self):
        result = HPOResult(
            trials=[Trial({}, v, i) for i, v in enumerate([3.0, 2.0, 2.5, 1.0])]
        )
        np.testing.assert_array_equal(result.optimization_curve(), [3.0, 2.0, 2.0, 1.0])

    def test_empty_result_raises(self):
        with pytest.raises(ValueError):
            HPOResult().best_trial


class TestRandomSearch:
    def test_runs_budget_trials(self):
        result = RandomSearch().optimize(_quadratic, _quadratic_space(), budget=25, random_state=0)
        assert result.n_trials == 25

    def test_finds_reasonable_optimum(self):
        result = RandomSearch().optimize(_quadratic, _quadratic_space(), budget=200, random_state=0)
        assert result.best_value < 0.05

    def test_seed_reproducibility(self):
        a = RandomSearch().optimize(_quadratic, _quadratic_space(), budget=10, random_state=1)
        b = RandomSearch().optimize(_quadratic, _quadratic_space(), budget=10, random_state=1)
        assert a.best_config == b.best_config

    def test_different_seeds_differ(self):
        a = RandomSearch().optimize(_quadratic, _quadratic_space(), budget=10, random_state=1)
        b = RandomSearch().optimize(_quadratic, _quadratic_space(), budget=10, random_state=2)
        assert a.best_config != b.best_config

    def test_widened_space_still_valid_for_loguniform(self):
        space = SearchSpace({"lr": LogUniformDimension(1e-3, 1e-1)})
        search = RandomSearch(widen_fraction=0.5, grid_points=5)
        result = search.optimize(lambda c: c["lr"], space, budget=20, random_state=0)
        assert all(t.config["lr"] > 0 for t in result.trials)


class TestGridSearch:
    def test_covers_full_grid(self):
        search = GridSearch(points_per_dimension=3)
        result = search.optimize(_quadratic, _quadratic_space(), budget=9, random_state=0)
        xs = sorted({t.config["x"] for t in result.trials})
        assert xs == pytest.approx([-1.0, 0.0, 1.0])

    def test_deterministic_across_seeds(self):
        a = GridSearch().optimize(_quadratic, _quadratic_space(), budget=9, random_state=0)
        b = GridSearch().optimize(_quadratic, _quadratic_space(), budget=9, random_state=99)
        assert a.best_config == b.best_config

    def test_budget_derives_points(self):
        result = GridSearch().optimize(_quadratic, _quadratic_space(), budget=16, random_state=0)
        assert result.n_trials == 16


class TestNoisyGridSearch:
    def test_different_seeds_give_different_grids(self):
        a = NoisyGridSearch().optimize(_quadratic, _quadratic_space(), budget=9, random_state=0)
        b = NoisyGridSearch().optimize(_quadratic, _quadratic_space(), budget=9, random_state=1)
        assert a.trials[0].config != b.trials[0].config

    def test_grid_shift_bounded_by_half_step(self):
        space = SearchSpace({"x": UniformDimension(0.0, 1.0)})
        search = NoisyGridSearch(points_per_dimension=5)
        result = search.optimize(lambda c: 0.0, space, budget=5, random_state=3)
        nominal = np.linspace(0.0, 1.0, 5)
        observed = np.array(sorted(t.config["x"] for t in result.trials))
        step = 0.25
        assert np.all(np.abs(observed - nominal) <= step / 2 + 1e-9)

    def test_still_optimizes(self):
        result = NoisyGridSearch().optimize(
            _quadratic, _quadratic_space(), budget=25, random_state=0
        )
        assert result.best_value < 0.3
