"""Tests for vectorized measurement batches (multi-seed fit kernels).

The batching contract is *bitwise identity*: grouping B compatible work
items (same pipeline, same hyperparameters, different seeds) into one
vectorized multi-seed fit must produce, per item, exactly the floats the
serial per-item path produces — scores, training histories, and every
weight tensor.  That contract is pinned at four levels:

* **kernels** — batched softmax / cross-entropy / mse and the stacked
  :class:`BatchedNetwork` forward/backward agree bitwise with the serial
  :mod:`repro.pipelines.nn` implementations per stacked slice;
* **pipelines** — ``fit_many`` on every vectorizing pipeline equals N
  independent ``fit`` calls (weights, histories, scores), and pipelines
  or inputs that cannot stack fall back to the sequential path;
* **engine** — ``StudyRunner`` with any ``batch_size`` and any executor
  backend returns measurements bitwise-equal to the unbatched serial
  runner, with progress ticks still firing once per *measurement*;
* **studies** — every registered study at smoke scale produces identical
  rows at ``batch_size`` 1/4/16, with the workhorse variance study
  additionally swept over every backend.

Shared-memory dataset arena lifecycle (publish-once, attach-cached,
crash/cancel cleanup) is covered at the bottom.
"""

import gc
import json
import subprocess
import sys
import textwrap
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.api import Session, StudySpec, get_study, list_studies
from repro.core.benchmark import BenchmarkProcess
from repro.data.dataset import Dataset
from repro.data.synthetic import make_gaussian_blobs
from repro.engine.cache import MeasurementCache
from repro.engine.executor import CancellableExecutor, ParallelExecutor
from repro.engine.runner import StudyRunner, WorkItem
from repro.engine.shm import DatasetHandle, SharedDatasetArena, shared_arena
from repro.pipelines.base import Pipeline, FitOutcome
from repro.pipelines.linear import LogisticRegressionPipeline, RidgeRegressionPipeline
from repro.pipelines.mlp import MLPClassifierPipeline, MLPRegressorPipeline, _stackable
from repro.pipelines.nn.batched import (
    BatchedNetwork,
    batched_cross_entropy_loss,
    batched_mse_loss,
    batched_softmax,
)
from repro.pipelines.nn.losses import cross_entropy_loss, mse_loss, softmax
from repro.pipelines.nn.network import MLPNetwork
from repro.utils.rng import SeedScope


def _blobs(seed=0, n=120, features=8, classes=3):
    return make_gaussian_blobs(
        n_samples=n, n_features=features, n_classes=classes, random_state=seed
    )


def _bundles(label, count, root=11):
    scope = SeedScope.from_state(root)
    return [scope.child(label, i).bundle() for i in range(count)]


def _networks(count, sizes=(6, 5, 3), dropout=0.0, seed=3):
    rng = np.random.default_rng(seed)
    return [
        MLPNetwork(
            list(sizes),
            task_type="classification",
            dropout_rate=dropout,
            init_rng=np.random.default_rng(rng.integers(2**31)),
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Kernels: stacked ops are per-slice bitwise equal to the serial ops
# ----------------------------------------------------------------------
class TestBatchedKernels:
    def test_softmax_matches_serial_per_slice(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 17, 5)) * 3.0
        stacked = batched_softmax(logits)
        for index in range(4):
            np.testing.assert_array_equal(stacked[index], softmax(logits[index]))

    def test_cross_entropy_matches_serial_per_slice(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 23, 4))
        labels = np.stack([rng.integers(0, 4, size=23) for _ in range(3)])
        losses, gradients = batched_cross_entropy_loss(logits, labels)
        for index in range(3):
            loss, gradient = cross_entropy_loss(logits[index], labels[index])
            assert losses[index] == loss
            np.testing.assert_array_equal(gradients[index], gradient)

    def test_mse_matches_serial_per_slice(self):
        rng = np.random.default_rng(2)
        predictions = rng.normal(size=(5, 19, 1))
        targets = rng.normal(size=(5, 19, 1))
        losses, gradients = batched_mse_loss(predictions, targets)
        for index in range(5):
            loss, gradient = mse_loss(predictions[index], targets[index])
            assert losses[index] == loss
            np.testing.assert_array_equal(gradients[index], gradient)

    def test_forward_and_gradients_match_serial_networks(self):
        networks = _networks(4)
        batched = BatchedNetwork(networks)
        rng = np.random.default_rng(5)
        X = rng.normal(size=(30, 6))
        y = rng.integers(0, 3, size=30)
        X_stack = np.stack([X] * 4)
        y_stack = np.stack([y] * 4)
        losses, gradients = batched.loss_and_gradients(X_stack, y_stack)
        for index, network in enumerate(networks):
            loss, grads = network.loss_and_gradients(X, y)
            assert losses[index] == loss
            for stacked, serial in zip(gradients, grads):
                np.testing.assert_array_equal(stacked[index], serial)

    def test_unstack_round_trips_parameters(self):
        networks = _networks(3)
        original = [[w.copy() for w in net.weights] for net in networks]
        batched = BatchedNetwork(networks)
        batched.unstack()
        for net, weights in zip(networks, original):
            for got, expected in zip(net.weights, weights):
                np.testing.assert_array_equal(got, expected)

    def test_batched_network_rejects_heterogeneous_stacks(self):
        a = _networks(1, sizes=(6, 5, 3))[0]
        b = _networks(1, sizes=(6, 4, 3))[0]
        with pytest.raises(ValueError):
            BatchedNetwork([a, b])


# ----------------------------------------------------------------------
# Pipelines: fit_many == N x fit, bitwise; non-stackable inputs fall back
# ----------------------------------------------------------------------
PIPELINES = [
    pytest.param(
        MLPClassifierPipeline(hidden_sizes=(12,), n_epochs=3), "classification",
        id="mlp-classifier",
    ),
    pytest.param(
        MLPClassifierPipeline(
            hidden_sizes=(10, 7),
            n_epochs=3,
            dropout_rate=0.3,
            numerical_noise_scale=1e-4,
            optimizer="adam",
            activation="tanh",
        ),
        "classification",
        id="mlp-dropout-noise-adam",
    ),
    pytest.param(
        MLPRegressorPipeline(hidden_sizes=(9,), n_epochs=3), "regression",
        id="mlp-regressor",
    ),
    pytest.param(LogisticRegressionPipeline(n_epochs=3), "classification", id="logistic"),
    pytest.param(RidgeRegressionPipeline(n_epochs=3), "regression", id="ridge"),
]


def _dataset_for(task_type, seed=0):
    dataset = _blobs(seed)
    if task_type == "regression":
        return Dataset(
            dataset.X, dataset.X[:, 0] * 2.0 + 0.5, name="reg", task_type="regression"
        )
    return dataset


def _assert_outcomes_bitwise(batched, serial):
    assert len(batched) == len(serial)
    for got, expected in zip(batched, serial):
        assert got.train_score == expected.train_score
        assert got.valid_score == expected.valid_score
        assert got.hparams == expected.hparams
        assert got.history == expected.history
        for w_got, w_expected in zip(got.model.weights, expected.model.weights):
            np.testing.assert_array_equal(w_got, w_expected)
        for b_got, b_expected in zip(got.model.biases, expected.model.biases):
            np.testing.assert_array_equal(b_got, b_expected)


class TestFitManyParity:
    @pytest.mark.parametrize("pipeline,task_type", PIPELINES)
    def test_fit_many_bitwise_equals_serial_fits(self, pipeline, task_type):
        dataset = _dataset_for(task_type)
        train = Dataset(
            dataset.X[:90], dataset.y[:90], name="t", task_type=task_type
        )
        valid = Dataset(
            dataset.X[90:], dataset.y[90:], name="v", task_type=task_type
        )
        bundles = _bundles("fit", 4)
        hparams = pipeline.default_hparams()
        serial = [
            pipeline.fit(train, hparams, seeds, valid=valid) for seeds in bundles
        ]
        batched = pipeline.fit_many(
            [train] * 4, hparams, bundles, valids=[valid] * 4
        )
        _assert_outcomes_bitwise(batched, serial)

    def test_mismatched_shapes_fall_back_to_sequential(self):
        pipeline = MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=2)
        dataset = _blobs()
        train_a = Dataset(dataset.X[:60], dataset.y[:60], name="a")
        train_b = Dataset(dataset.X[:80], dataset.y[:80], name="b")
        assert not _stackable(pipeline, [train_a, train_b])
        bundles = _bundles("fallback", 2)
        hparams = pipeline.default_hparams()
        serial = [
            pipeline.fit(t, hparams, s) for t, s in zip([train_a, train_b], bundles)
        ]
        batched = pipeline.fit_many([train_a, train_b], hparams, bundles)
        _assert_outcomes_bitwise(batched, serial)

    def test_default_fit_many_is_sequential_for_plain_pipelines(self):
        class Stub(Pipeline):
            name = "stub"
            metric_name = "accuracy"
            task_type = "classification"

            def default_hparams(self):
                return {}

            def search_space(self):
                raise NotImplementedError

            def fit(self, train, hparams, seeds, valid=None):
                return FitOutcome(
                    model=None,
                    train_score=float(seeds.base_seed % 97),
                    valid_score=None,
                    hparams=dict(hparams),
                    seeds=seeds,
                )

            def evaluate(self, model, dataset):
                return 0.5

        pipeline = Stub()
        bundles = _bundles("stub", 3)
        outcomes = pipeline.fit_many([None] * 3, {}, bundles)
        assert [o.train_score for o in outcomes] == [
            float(s.base_seed % 97) for s in bundles
        ]

    def test_measure_many_bitwise_equals_measure(self):
        pipeline = MLPClassifierPipeline(hidden_sizes=(10,), n_epochs=3)
        process = BenchmarkProcess(_blobs(), pipeline)
        bundles = _bundles("measure", 5)
        serial = [process.measure(seeds) for seeds in bundles]
        batched = process.measure_many(bundles)
        for got, expected in zip(batched, serial):
            assert got.test_score == expected.test_score
            assert got.valid_score == expected.valid_score
            assert got.train_score == expected.train_score
            assert got.hparams == expected.hparams


# ----------------------------------------------------------------------
# Engine: runner batching is invisible except for speed
# ----------------------------------------------------------------------
def _measurements_equal(a, b):
    return (
        a.test_score == b.test_score
        and a.valid_score == b.valid_score
        and a.train_score == b.train_score
        and a.hparams == b.hparams
    )


class TestRunnerBatching:
    @pytest.fixture(scope="class")
    def process(self):
        return BenchmarkProcess(
            _blobs(), MLPClassifierPipeline(hidden_sizes=(10,), n_epochs=3)
        )

    @pytest.fixture(scope="class")
    def items(self):
        scope = SeedScope.from_state(23)
        items = [WorkItem.from_scope(scope.child("rep", i)) for i in range(7)]
        items += [
            WorkItem(
                seeds=scope.child("alt", i).bundle(),
                hparams={"learning_rate": 0.02},
            )
            for i in range(4)
        ]
        return items

    @pytest.fixture(scope="class")
    def reference(self, process, items):
        return StudyRunner(process).run(items)

    @pytest.mark.parametrize("batch_size", [1, 4, 16])
    @pytest.mark.parametrize(
        "backend,n_jobs", [("serial", 1), ("thread", 2), ("process", 2)]
    )
    def test_batched_matrix_bitwise(
        self, process, items, reference, batch_size, backend, n_jobs
    ):
        executor = ParallelExecutor(n_jobs, backend=backend, batch_size=batch_size)
        got = StudyRunner(process, executor=executor).run(items)
        assert all(_measurements_equal(a, b) for a, b in zip(reference, got))

    def test_ticks_fire_once_per_measurement(self, process, items, reference):
        ticks = []
        executor = CancellableExecutor(
            ParallelExecutor(1, backend="serial", batch_size=4),
            tick=lambda: ticks.append(1),
        )
        got = StudyRunner(process, executor=executor).run(items)
        assert all(_measurements_equal(a, b) for a, b in zip(reference, got))
        assert len(ticks) == len(items)

    def test_batched_results_commit_through_put_many(self, process, items, reference):
        class CountingCache(MeasurementCache):
            put_many_calls = 0
            put_calls = 0

            def put(self, key, measurement):
                CountingCache.put_calls += 1
                return super().put(key, measurement)

            def put_many(self, pairs):
                CountingCache.put_many_calls += 1
                return super().put_many(pairs)

        cache = CountingCache()
        runner = StudyRunner(
            process,
            executor=ParallelExecutor(1, backend="serial", batch_size=4),
            cache=cache,
        )
        got = runner.run(items)
        assert all(_measurements_equal(a, b) for a, b in zip(reference, got))
        assert CountingCache.put_many_calls == 1
        assert CountingCache.put_calls == 0
        # Replay: everything comes from the cache, bitwise.
        replayed = runner.run(items)
        assert all(_measurements_equal(a, b) for a, b in zip(reference, replayed))
        assert cache.hits >= len(items)

    def test_hpo_items_stay_singleton_tasks(self, process):
        scope = SeedScope.from_state(31)
        hpo_process = BenchmarkProcess(
            process.dataset, process.pipeline, hpo_budget=2
        )
        items = [
            WorkItem(seeds=scope.child("hpo", i).bundle(), with_hpo=True)
            for i in range(2)
        ]
        serial = StudyRunner(hpo_process).run(items)
        batched = StudyRunner(
            hpo_process,
            executor=ParallelExecutor(1, backend="serial", batch_size=8),
        ).run(items)
        assert all(_measurements_equal(a, b) for a, b in zip(serial, batched))

    def test_plan_batches_groups_by_hparams_and_chunks(self, process):
        scope = SeedScope.from_state(41)
        items = [WorkItem.from_scope(scope.child("a", i)) for i in range(5)]
        items += [
            WorkItem(
                seeds=scope.child("b", i).bundle(), hparams={"learning_rate": 0.1}
            )
            for i in range(3)
        ]
        runner = StudyRunner(process, batch_size=4)
        tasks, positions = runner._plan_batches(items)
        assert [len(task) for task in tasks] == [4, 1, 3]
        flat = [p for chunk in positions for p in chunk]
        assert sorted(flat) == list(range(len(items)))


# ----------------------------------------------------------------------
# Cache: batched write-through
# ----------------------------------------------------------------------
class TestPutMany:
    def test_write_many_persists_all_entries_with_one_gc_pass(self, tmp_path):
        from repro.core.benchmark import Measurement
        from repro.engine.cache import FileStore

        store = FileStore(str(tmp_path), max_entries=3)
        entries = [
            (f"{i:02d}" + "a" * 62, Measurement(test_score=float(i), valid_score=None, train_score=0.0))
            for i in range(5)
        ]
        sizes = store.write_many(entries)
        assert len(sizes) == 5 and all(size > 0 for size in sizes)
        # The batch landed whole, then one gc pass pruned back to budget.
        assert len(store.keys()) == 3
        # The last-written key survives the protecting gc pass.
        assert entries[-1][0] in store

    def test_put_many_counts_like_n_puts(self, tmp_path):
        from repro.core.benchmark import Measurement

        cache = MeasurementCache(max_entries=2)
        pairs = [
            ("k" * 63 + str(i), Measurement(test_score=float(i), valid_score=None, train_score=0.0))
            for i in range(4)
        ]
        evicted = cache.put_many(pairs)
        assert evicted == 2
        assert len(cache) == 2
        assert cache.get(pairs[-1][0]).test_score == 3.0


# ----------------------------------------------------------------------
# Studies: every registered study is batch-invariant at smoke scale
# ----------------------------------------------------------------------
def _rows(result):
    return json.dumps(json.loads(result.to_json())["rows"], sort_keys=True)


def _run_study(name, *, batch_size, n_jobs=1, backend=None):
    info = get_study(name)
    spec = StudySpec(study=name, params=dict(info.smoke_params), random_state=7)
    with Session(
        n_jobs=n_jobs, backend=backend, batch_size=batch_size
    ) as session:
        return _rows(session.run(spec))


class TestStudyBatchInvariance:
    @pytest.mark.parametrize("name", list_studies())
    def test_registered_studies_identical_at_batch_4(self, name):
        assert _run_study(name, batch_size=1) == _run_study(name, batch_size=4)

    @pytest.mark.parametrize("batch_size", [4, 16])
    @pytest.mark.parametrize(
        "backend,n_jobs", [("serial", 1), ("thread", 2), ("process", 2)]
    )
    def test_variance_study_full_grid(self, batch_size, backend, n_jobs):
        reference = _run_study("variance", batch_size=1)
        got = _run_study(
            "variance", batch_size=batch_size, n_jobs=n_jobs, backend=backend
        )
        assert got == reference


# ----------------------------------------------------------------------
# Shared-memory dataset arena
# ----------------------------------------------------------------------
class TestSharedDatasetArena:
    def test_publish_is_memoized_and_handle_materializes(self):
        arena = SharedDatasetArena()
        dataset = _blobs(seed=5)
        try:
            handle = arena.publish(dataset)
            assert arena.publish(dataset) is handle
            rebuilt = handle.materialize()
            np.testing.assert_array_equal(rebuilt.X, dataset.X)
            np.testing.assert_array_equal(rebuilt.y, dataset.y)
            assert rebuilt.name == dataset.name
            assert rebuilt.task_type == dataset.task_type
            # The content token rides the handle: no re-hash on attach.
            assert getattr(rebuilt, "_repro_content_token") == handle.token
        finally:
            arena.close()

    def test_close_unlinks_segments(self):
        arena = SharedDatasetArena()
        dataset = _blobs(seed=6)
        handle = arena.publish(dataset)
        arena.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.x_name)
        # close() is idempotent.
        arena.close()

    def test_dataset_garbage_collection_releases_segments(self):
        arena = SharedDatasetArena()
        dataset = _blobs(seed=7)
        handle = arena.publish(dataset)
        del dataset
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.x_name)
        assert len(arena) == 0

    def test_interpreter_crash_path_releases_segments(self, tmp_path):
        # A publisher that exits without close() (the crash/cancel path)
        # must not leak segments: weakref.finalize fires at exit.
        script = textwrap.dedent(
            """
            from repro.data.synthetic import make_gaussian_blobs
            from repro.engine.shm import shared_arena

            dataset = make_gaussian_blobs(
                n_samples=50, n_features=4, n_classes=2, random_state=0
            )
            handle = shared_arena().publish(dataset)
            print(handle.x_name, handle.y_name)
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        x_name, y_name = result.stdout.split()
        for name in (x_name, y_name):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_cancel_mid_run_leaves_arena_consistent(self):
        import threading

        from repro.engine.executor import StudyCancelled

        process = BenchmarkProcess(
            _blobs(seed=8), MLPClassifierPipeline(hidden_sizes=(8,), n_epochs=2)
        )
        cancel = threading.Event()
        cancel.set()
        executor = CancellableExecutor(
            ParallelExecutor(2, backend="process", batch_size=4), cancel
        )
        runner = StudyRunner(process, executor=executor)
        scope = SeedScope.from_state(3)
        items = [WorkItem.from_scope(scope.child("c", i)) for i in range(4)]
        with pytest.raises(StudyCancelled):
            runner.run(items)
        # The published dataset is still usable for the next (uncancelled)
        # run and is released with the dataset, not leaked by the abort.
        arena = shared_arena()
        handle = arena.publish(process.dataset)
        assert handle.materialize().X.shape == process.dataset.X.shape


# ----------------------------------------------------------------------
# Executor: weighted liveness ticks
# ----------------------------------------------------------------------
class TestWeightedTicks:
    @pytest.mark.parametrize("backend,n_jobs", [("serial", 1), ("thread", 2), ("process", 2)])
    def test_tick_fires_weight_times_per_item(self, backend, n_jobs):
        executor = ParallelExecutor(n_jobs, backend=backend)
        ticks = []
        result = executor.map(
            _double, [1, 2, 3], tick=lambda: ticks.append(1), weights=[2, 3, 1]
        )
        assert result == [2, 4, 6]
        assert len(ticks) == 6

    def test_weights_must_align_with_items(self):
        executor = ParallelExecutor(1)
        with pytest.raises(ValueError):
            executor.map(_double, [1, 2], weights=[1])


def _double(x):
    return 2 * x
