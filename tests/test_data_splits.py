"""Tests for splitting utilities."""

import numpy as np
import pytest

from repro.data.splits import stratified_indices, train_valid_test_split


class TestStratifiedIndices:
    def test_disjoint_and_complete(self, rng):
        labels = np.repeat([0, 1, 2], 30)
        first, second = stratified_indices(labels, 0.5, rng)
        assert set(first).isdisjoint(second)
        assert len(first) + len(second) == labels.size

    def test_class_proportions_preserved(self, rng):
        labels = np.array([0] * 80 + [1] * 20)
        first, _ = stratified_indices(labels, 0.5, rng)
        fraction_of_ones = np.mean(labels[first] == 1)
        assert abs(fraction_of_ones - 0.2) < 0.05


class TestTrainValidTestSplit:
    def test_partition_covers_dataset(self, blobs_dataset):
        train, valid, test = train_valid_test_split(blobs_dataset, random_state=0)
        assert train.n_samples + valid.n_samples + test.n_samples == blobs_dataset.n_samples

    def test_fraction_sizes(self, blobs_dataset):
        train, valid, test = train_valid_test_split(
            blobs_dataset, train_fraction=0.5, valid_fraction=0.25, random_state=0
        )
        assert abs(train.n_samples / blobs_dataset.n_samples - 0.5) < 0.1
        assert abs(valid.n_samples / blobs_dataset.n_samples - 0.25) < 0.1

    def test_rejects_fractions_summing_to_one(self, blobs_dataset):
        with pytest.raises(ValueError):
            train_valid_test_split(blobs_dataset, train_fraction=0.8, valid_fraction=0.2)

    def test_stratification_keeps_all_classes_in_test(self, blobs_dataset):
        _, _, test = train_valid_test_split(blobs_dataset, random_state=0, stratify=True)
        assert set(np.unique(test.y)) == set(np.unique(blobs_dataset.y))

    def test_unstratified_regression_split(self, regression_dataset):
        train, valid, test = train_valid_test_split(
            regression_dataset, stratify=False, random_state=0
        )
        assert train.n_samples > 0 and valid.n_samples > 0 and test.n_samples > 0
